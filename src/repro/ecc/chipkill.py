"""Conventional x4 Chipkill (single-symbol-correcting symbol code).

Models the organization of Figure 8a: an 18-chip x4 DIMM where 16 chips
carry data and two ECC chips carry Reed-Solomon check symbols.

A standard RS code over GF(16) maxes out at 15 symbols, so an 18-symbol
codeword cannot use 4-bit symbols directly; like commercial chipkill
designs, we widen the symbol to cover a chip's contribution across *two*
bus beats: chip ``c`` contributes one 8-bit symbol per beat-pair (its 4
bits from each beat), giving four RS(18,16) codewords over GF(256) per
64-byte line. Distance 3 → any single symbol (hence any single-chip)
error per codeword is corrected, which covers a whole-chip failure across
the burst. The two check symbols per codeword are exactly the 4 bits per
beat each of the two ECC chips provides (16 bits per beat-pair, 64 bits
per line — the same ECC budget as SECDED DIMMs).

Detection beyond single-symbol follows the real algebra of the code:
a two-chip error either raises a decoder failure (detected uncorrectable
error) or aliases onto a miscorrection — the weakness ECCploit
(Section V, [6]) exploits and SafeGuard's MAC closes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Set, Tuple

from repro.ecc import kernels
from repro.ecc.gf import GF256
from repro.ecc.reed_solomon import ReedSolomon, RSDecodeFailure
from repro.utils.bits import LINE_BITS


class ChipkillStatus(enum.Enum):
    CLEAN = "clean"
    CORRECTED = "corrected"
    DETECTED_UE = "detected_ue"


@dataclass(frozen=True)
class ChipkillResult:
    """Outcome of decoding one line under Chipkill."""

    data: int  #: 512-bit (possibly corrected) line
    status: ChipkillStatus
    corrected_chips: Tuple[int, ...]  #: chip indices repaired in any codeword

    @property
    def ok(self) -> bool:
        return self.status is not ChipkillStatus.DETECTED_UE


class ChipkillCode:
    """Line-level Chipkill codec: 4 RS(18,16)/GF(256) codewords per line."""

    N_CHIPS = 18
    DATA_CHIPS = 16
    SYMBOL_BITS = 8  #: one chip's contribution per beat-pair
    BEATS = 8
    BEAT_PAIRS = BEATS // 2
    CHECK_BITS_PER_PAIR = 16  #: two 8-bit check symbols
    ECC_BITS = BEAT_PAIRS * CHECK_BITS_PER_PAIR  #: 64 bits per line

    def __init__(self):
        self._rs = ReedSolomon(GF256, self.N_CHIPS, self.DATA_CHIPS)
        self._fast = kernels.use_fast()

    # -- symbol packing -------------------------------------------------------

    def _all_pair_symbols(self, line: int) -> List[List[int]]:
        """The data symbols of every beat-pair (numpy transpose when fast)."""
        if self._fast:
            return kernels.chipkill_pair_symbols(line)
        return [self._pair_symbols(line, pair) for pair in range(self.BEAT_PAIRS)]

    def _pair_symbols(self, line: int, pair: int) -> List[int]:
        """The 16 data symbols of beat-pair ``pair`` (chip order)."""
        base0 = (2 * pair) * 64
        base1 = (2 * pair + 1) * 64
        symbols = []
        for chip in range(self.DATA_CHIPS):
            low = (line >> (base0 + 4 * chip)) & 0xF
            high = (line >> (base1 + 4 * chip)) & 0xF
            symbols.append(low | (high << 4))
        return symbols

    def _set_pair_symbols(self, line: int, pair: int, symbols: List[int]) -> int:
        base0 = (2 * pair) * 64
        base1 = (2 * pair + 1) * 64
        for chip, symbol in enumerate(symbols):
            line &= ~(0xF << (base0 + 4 * chip))
            line &= ~(0xF << (base1 + 4 * chip))
            line |= (symbol & 0xF) << (base0 + 4 * chip)
            line |= ((symbol >> 4) & 0xF) << (base1 + 4 * chip)
        return line

    # -- codec ----------------------------------------------------------------

    def encode(self, line: int) -> Tuple[int, int]:
        """512-bit line -> (line, 64-bit packed check symbols).

        Beat-pair ``p``'s check symbols occupy bits ``[16p, 16p+16)`` of
        the packed value: chip 16's symbol in the low byte, chip 17's in
        the high byte.
        """
        if line < 0 or line >> LINE_BITS:
            raise ValueError("line does not fit in 512 bits")
        checks = 0
        for pair, symbols in enumerate(self._all_pair_symbols(line)):
            codeword = self._rs.encode(symbols)
            c0, c1 = codeword[self.DATA_CHIPS], codeword[self.DATA_CHIPS + 1]
            checks |= (c0 | (c1 << 8)) << (16 * pair)
        return line, checks

    def decode(self, line: int, checks: int) -> ChipkillResult:
        """Decode all 4 codewords; aggregate the worst per-pair outcome."""
        corrected_line = line
        corrected_chips: Set[int] = set()
        worst = ChipkillStatus.CLEAN
        for pair, symbols in enumerate(self._all_pair_symbols(line)):
            field = (checks >> (16 * pair)) & 0xFFFF
            received = symbols + [field & 0xFF, (field >> 8) & 0xFF]
            try:
                result = self._rs.decode(received)
            except RSDecodeFailure:
                worst = ChipkillStatus.DETECTED_UE
                continue
            if result.corrected_positions:
                corrected_chips.update(result.corrected_positions)
                if worst is ChipkillStatus.CLEAN:
                    worst = ChipkillStatus.CORRECTED
                corrected_line = self._set_pair_symbols(
                    corrected_line, pair, list(result.data)
                )
        return ChipkillResult(corrected_line, worst, tuple(sorted(corrected_chips)))

    # -- batched API ----------------------------------------------------------

    def encode_batch(self, lines: Iterable[int]) -> List[Tuple[int, int]]:
        """Encode many lines; one ``(line, checks)`` pair per input line."""
        return [self.encode(line) for line in lines]

    def decode_batch(
        self, pairs: Iterable[Tuple[int, int]]
    ) -> List[ChipkillResult]:
        """Decode many ``(line, checks)`` pairs."""
        return [self.decode(line, checks) for line, checks in pairs]

    # -- fault-injection helpers ------------------------------------------------

    def corrupt_chip(self, line: int, checks: int, chip: int, pattern: int) -> Tuple[int, int]:
        """XOR an error ``pattern`` into chip ``chip``'s contribution.

        ``pattern`` packs one 4-bit error per beat (beat 0 in the low
        nibble); a zero nibble leaves that beat untouched. Chips 16 and 17
        corrupt the packed check bits instead of the line.
        """
        for beat in range(self.BEATS):
            err = (pattern >> (4 * beat)) & 0xF
            if not err:
                continue
            if chip < self.DATA_CHIPS:
                line ^= err << (beat * 64 + 4 * chip)
            else:
                pair = beat // 2
                nibble_shift = (beat % 2) * 4  # low/high nibble of the symbol
                byte_shift = (chip - self.DATA_CHIPS) * 8  # chip 16 -> c0, 17 -> c1
                checks ^= err << (16 * pair + byte_shift + nibble_shift)
        return line, checks
