"""Parity primitives: pin-column parity and chip-wise parity.

- *Column parity* (Section IV-C, Figure 5): treat the 8 bits each data-bus
  pin contributes across the burst as a symbol; the 8-bit column parity is
  the XOR of the 64 pin symbols. A single pin (column) failure corrupts
  exactly one symbol, which the parity can reconstruct once the failing
  pin is identified (by iterating candidates under MAC verification).
- *Chip-wise parity* (Section V, Figure 8b): in the Chipkill organization
  each of the 17 non-parity chips contributes 32 bits per line (16 data
  chips + the MAC chip); the 18th chip stores their 32-bit XOR. A whole
  failed chip is reconstructed from the other 17.
"""

from __future__ import annotations

from typing import List

from repro.ecc import kernels
from repro.utils.bits import (
    extract_chip_bits,
    extract_pin_symbols,
    insert_chip_bits,
    insert_pin_symbol,
)

N_DATA_PINS = 64
PIN_SYMBOL_BITS = 8

N_X4_DATA_CHIPS = 16
X4_CHIP_BITS = 4
CHIP_CONTRIBUTION_BITS = 32  #: 4 bits x 8 beats per line


def column_parity(line: int) -> int:
    """8-bit XOR of the 64 pin symbols of a 512-bit line."""
    if kernels.use_fast():
        # Bit ``b`` of the XOR of all pin symbols is the parity of beat
        # word ``b`` — no symbol extraction needed.
        parity = 0
        for beat in range(PIN_SYMBOL_BITS):
            word = (line >> (beat * N_DATA_PINS)) & ((1 << N_DATA_PINS) - 1)
            parity |= (word.bit_count() & 1) << beat
        return parity
    parity = 0
    for symbol in extract_pin_symbols(line, N_DATA_PINS):
        parity ^= symbol
    return parity


def recover_pin(line: int, pin: int, parity: int) -> int:
    """Reconstruct pin ``pin``'s symbol from the column parity.

    Returns the repaired line assuming the failure is confined to that pin
    (the caller verifies the guess with the MAC).
    """
    if kernels.use_fast():
        # XOR of all *other* symbols = full column parity with the target
        # pin's own symbol cancelled back out.
        own = 0
        for beat in range(PIN_SYMBOL_BITS):
            own |= ((line >> (beat * N_DATA_PINS + pin)) & 1) << beat
        recovered = parity ^ column_parity(line) ^ own
        return insert_pin_symbol(line, pin, recovered, N_DATA_PINS)
    symbols = extract_pin_symbols(line, N_DATA_PINS)
    recovered = parity
    for p, symbol in enumerate(symbols):
        if p != pin:
            recovered ^= symbol
    return insert_pin_symbol(line, pin, recovered, N_DATA_PINS)


def chip_contributions(line: int, mac32: int) -> List[int]:
    """The 32-bit per-line contributions of the 17 non-parity chips.

    Chips 0..15 are the data chips (4 bits per beat out of the 512-bit
    line); chip 16 is the MAC chip.
    """
    contributions = [
        extract_chip_bits(line, chip, X4_CHIP_BITS, N_X4_DATA_CHIPS)
        for chip in range(N_X4_DATA_CHIPS)
    ]
    contributions.append(mac32 & 0xFFFFFFFF)
    return contributions


def chip_parity(line: int, mac32: int) -> int:
    """32-bit chip-wise parity across the 16 data chips and the MAC chip."""
    parity = 0
    for contribution in chip_contributions(line, mac32):
        parity ^= contribution
    return parity


def recover_chip(line: int, mac32: int, parity: int, chip: int) -> "tuple[int, int]":
    """Reconstruct chip ``chip`` (0..16) from the chip-wise parity.

    Returns ``(line, mac32)`` with the target chip's contribution replaced
    by the parity-derived value. Chip 16 is the MAC chip: repairing it
    rewrites the MAC rather than the data.
    """
    contributions = chip_contributions(line, mac32)
    recovered = parity
    for c, contribution in enumerate(contributions):
        if c != chip:
            recovered ^= contribution
    if chip == N_X4_DATA_CHIPS:
        return line, recovered
    line = insert_chip_bits(line, chip, recovered, X4_CHIP_BITS, N_X4_DATA_CHIPS)
    return line, mac32
