"""Galois-field GF(2^m) arithmetic.

Log/antilog-table implementation supporting any ``m`` up to 16 with a
standard primitive polynomial. :data:`GF16` (symbols of x4 DRAM chips) and
:data:`GF256` are the instances used by the Chipkill codec and tests.
"""

from __future__ import annotations

from typing import List, Optional

#: Standard primitive polynomials (including the x^m term), indexed by m.
PRIMITIVE_POLYS = {
    2: 0b111,
    3: 0b1011,
    4: 0b10011,  # x^4 + x + 1
    5: 0b100101,
    6: 0b1000011,
    7: 0b10001001,
    8: 0b100011101,  # x^8 + x^4 + x^3 + x^2 + 1 (the AES-adjacent 0x11D)
    10: 0b10000001001,
    12: 0b1000001010011,
    16: 0b10001000000001011,
}


class GF2m:
    """The finite field GF(2^m) with exp/log tables."""

    def __init__(self, m: int, primitive_poly: Optional[int] = None):
        if primitive_poly is None:
            try:
                primitive_poly = PRIMITIVE_POLYS[m]
            except KeyError:
                raise ValueError(f"no default primitive polynomial for m={m}")
        self.m = m
        self.size = 1 << m
        self.poly = primitive_poly
        self.exp: List[int] = [0] * (2 * self.size)
        self.log: List[int] = [0] * self.size
        x = 1
        for i in range(self.size - 1):
            self.exp[i] = x
            self.log[x] = i
            x <<= 1
            if x & self.size:
                x ^= primitive_poly
        if x != 1:
            raise ValueError("polynomial is not primitive for this field")
        # Duplicate the exp table so products of logs index without mod.
        for i in range(self.size - 1, 2 * self.size):
            self.exp[i] = self.exp[i - (self.size - 1)]

    def add(self, a: int, b: int) -> int:
        """Field addition (= subtraction = XOR)."""
        return a ^ b

    sub = add

    def mul(self, a: int, b: int) -> int:
        """Field multiplication."""
        if a == 0 or b == 0:
            return 0
        log = self.log
        return self.exp[log[a] + log[b]]

    def div(self, a: int, b: int) -> int:
        """Field division; raises ZeroDivisionError on b == 0."""
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(2^m)")
        if a == 0:
            return 0
        return self.exp[self.log[a] - self.log[b] + self.size - 1]

    def inv(self, a: int) -> int:
        """Multiplicative inverse."""
        if a == 0:
            raise ZeroDivisionError("zero has no inverse")
        return self.exp[self.size - 1 - self.log[a]]

    def pow(self, a: int, e: int) -> int:
        """a**e in the field (e may be negative)."""
        if a == 0:
            if e == 0:
                return 1
            if e < 0:
                raise ZeroDivisionError("zero to a negative power")
            return 0
        exponent = (self.log[a] * e) % (self.size - 1)
        return self.exp[exponent]

    def alpha_pow(self, e: int) -> int:
        """alpha**e for the primitive element alpha."""
        return self.exp[e % (self.size - 1)]

    # -- polynomial helpers (coefficient lists, index = degree) -------------

    def poly_eval(self, coeffs: List[int], x: int) -> int:
        """Evaluate a polynomial (Horner, highest degree last)."""
        result = 0
        for c in reversed(coeffs):
            result = self.mul(result, x) ^ c
        return result

    def poly_mul(self, a: List[int], b: List[int]) -> List[int]:
        """Polynomial product."""
        exp = self.exp
        log = self.log
        out = [0] * (len(a) + len(b) - 1)
        for i, ca in enumerate(a):
            if ca == 0:
                continue
            log_ca = log[ca]
            for j, cb in enumerate(b):
                if cb:
                    out[i + j] ^= exp[log_ca + log[cb]]
        return out

    def poly_scale(self, a: List[int], s: int) -> List[int]:
        """Polynomial times a scalar."""
        return [self.mul(c, s) for c in a]

    def poly_add(self, a: List[int], b: List[int]) -> List[int]:
        """Polynomial sum."""
        if len(a) < len(b):
            a, b = b, a
        out = list(a)
        for i, c in enumerate(b):
            out[i] ^= c
        return out


GF16 = GF2m(4)
GF256 = GF2m(8)
