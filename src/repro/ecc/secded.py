"""The concrete ECC instances used by the paper.

- :class:`SECDED72` — the (72,64) word-granularity SECDED code of
  conventional ECC DIMMs (Figure 3a): 64 data bits + 8 ECC bits per bus
  beat.
- :class:`WordSECDEDLine` — a full 64-byte line protected word-by-word by
  :class:`SECDED72`, i.e. the *conventional* data path SafeGuard replaces.
  Eight independent codewords per line, 64 bits of ECC total.
- :class:`LineECC1` — SafeGuard's line-granularity single-error-correcting
  code (Figure 3b / Figure 5): one Hamming SEC codeword across the whole
  512-bit line plus its MAC (and column parity when present). 10 check
  bits cover payloads up to 1013 bits, matching the paper's "10 bits for
  ECC-1".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.ecc.hamming import DecodeResult, DecodeStatus, HammingSEC, HammingSECDED
from repro.utils.bits import LINE_BITS, WORD_BITS, int_to_words, words_to_int


class SECDED72:
    """(72,64) SECDED: the per-word code of conventional ECC DIMMs."""

    DATA_BITS = WORD_BITS
    CODE_BITS = 72
    ECC_BITS = CODE_BITS - DATA_BITS

    def __init__(self):
        self._code = HammingSECDED(self.DATA_BITS)
        assert self._code.n_total == self.CODE_BITS

    def encode(self, word: int) -> int:
        """64-bit word -> 72-bit codeword."""
        return self._code.encode(word)

    def decode(self, codeword: int) -> DecodeResult:
        """72-bit codeword -> corrected 64-bit word + status."""
        return self._code.decode(codeword)

    def check_bit_difference(self, codeword: int) -> int:
        """XOR of the codeword against a clean re-encode of its data.

        Zero iff the check bits are consistent with the data bits; used by
        diagnostics that want "which check bits disagree" without running
        the full decode.
        """
        return codeword ^ self._code.encode(self._code._extract_data(codeword))


@dataclass(frozen=True)
class LineDecodeResult:
    """Decode result for a whole line under word-granularity SECDED."""

    data: int  #: 512-bit corrected line
    status: DecodeStatus  #: worst status across the 8 word codewords
    word_statuses: Tuple[DecodeStatus, ...]

    @property
    def ok(self) -> bool:
        return self.status is not DecodeStatus.DETECTED_UE


class WordSECDEDLine:
    """A 64-byte line protected by eight independent (72,64) codewords.

    This is the conventional ECC-DIMM organization: beat ``i`` carries word
    ``i`` and its own 8-bit SECDED. ``encode`` returns ``(line, ecc)``
    where ``ecc`` packs the eight 8-bit ECC fields (word 0's ECC in the
    low byte) — exactly the 64 bits stored in the ECC chip.
    """

    ECC_BITS = 64

    def __init__(self):
        self._word_code = SECDED72()
        # Cache the positional scatter/gather by encoding via HammingSECDED
        # directly; per-word ops are cheap enough for the data-path tests.

    def encode(self, line: int) -> Tuple[int, int]:
        """512-bit line -> (line, 64-bit packed ECC)."""
        if line < 0 or line >> LINE_BITS:
            raise ValueError("line does not fit in 512 bits")
        ecc = 0
        for i, word in enumerate(int_to_words(line)):
            codeword = self._word_code.encode(word)
            ecc |= self._extract_ecc_field(codeword, word) << (8 * i)
        return line, ecc

    def decode(self, line: int, ecc: int) -> LineDecodeResult:
        """Check/correct each word codeword; aggregate the worst status."""
        corrected_words: List[int] = []
        statuses: List[DecodeStatus] = []
        for i, word in enumerate(int_to_words(line)):
            field = (ecc >> (8 * i)) & 0xFF
            codeword = self._insert_ecc_field(word, field)
            result = self._word_code.decode(codeword)
            corrected_words.append(result.data)
            statuses.append(result.status)
        worst = DecodeStatus.CLEAN
        if DecodeStatus.CORRECTED in statuses:
            worst = DecodeStatus.CORRECTED
        if DecodeStatus.DETECTED_UE in statuses:
            worst = DecodeStatus.DETECTED_UE
        return LineDecodeResult(words_to_int(corrected_words), worst, tuple(statuses))

    # -- batched API ---------------------------------------------------------

    def encode_batch(self, lines: Iterable[int]) -> List[Tuple[int, int]]:
        """Encode many lines; one ``(line, ecc)`` pair per input line."""
        return [self.encode(line) for line in lines]

    def decode_batch(
        self, pairs: Iterable[Tuple[int, int]]
    ) -> List[LineDecodeResult]:
        """Decode many ``(line, ecc)`` pairs."""
        return [self.decode(line, ecc) for line, ecc in pairs]

    # -- ECC field packing --------------------------------------------------
    #
    # The Hamming codeword interleaves check bits positionally. To store
    # "the 8 ECC bits" separately (as the ECC chip does) we gather the check
    # positions into a compact field and scatter them back before decoding.

    def _extract_ecc_field(self, codeword: int, word: int) -> int:
        code = self._word_code._code
        if code._kernel is not None:
            field = code._kernel.gather_checks(codeword)
            return field | (((codeword >> code.n) & 1) << code.r)
        field = 0
        bit = 0
        for pos in code._check_positions:
            field |= ((codeword >> (pos - 1)) & 1) << bit
            bit += 1
        field |= ((codeword >> code.n) & 1) << bit  # overall parity
        return field

    def _insert_ecc_field(self, word: int, field: int) -> int:
        code = self._word_code._code
        if code._kernel is not None:
            codeword = code._kernel.scatter_data(word)
            codeword |= code._kernel.scatter_checks(field & ((1 << code.r) - 1))
            if (field >> code.r) & 1:
                codeword |= 1 << code.n
            return codeword
        codeword = 0
        for data_index, pos in enumerate(code._data_positions):
            if (word >> data_index) & 1:
                codeword |= 1 << (pos - 1)
        bit = 0
        for pos in code._check_positions:
            if (field >> bit) & 1:
                codeword |= 1 << (pos - 1)
            bit += 1
        if (field >> bit) & 1:
            codeword |= 1 << code.n
        return codeword


class LineECC1:
    """Line-granularity SEC: one Hamming codeword over data (+MAC, +parity).

    The payload is the concatenation (low bits first) of the 512-bit line
    and whatever metadata the SafeGuard variant protects alongside it (the
    54-bit MAC in Figure 3b; the 46-bit MAC and 8-bit column parity in
    Figure 5). 10 check bits suffice for any payload up to 1013 bits.
    """

    CHECK_BITS = 10

    def __init__(self, payload_bits: int):
        if payload_bits > (1 << self.CHECK_BITS) - self.CHECK_BITS - 1:
            raise ValueError("payload too large for 10 check bits")
        self.payload_bits = payload_bits
        self._code = HammingSEC(payload_bits)
        assert self._code.r <= self.CHECK_BITS, (
            f"payload of {payload_bits} bits needs {self._code.r} check bits"
        )
        self.check_bits = self._code.r

    def encode(self, payload: int) -> int:
        """Return the ECC-1 check bits for a payload."""
        codeword = self._code.encode(payload)
        return self._gather_checks(codeword)

    def correct(self, payload: int, checks: int) -> DecodeResult:
        """Correct at most one flipped bit in payload+checks."""
        codeword = self._scatter(payload, checks)
        return self._code.decode(codeword)

    # -- batched API ---------------------------------------------------------

    def encode_batch(self, payloads: Iterable[int]) -> List[int]:
        """ECC-1 check bits for many payloads."""
        return [self.encode(payload) for payload in payloads]

    def decode_batch(
        self, pairs: Iterable[Tuple[int, int]]
    ) -> List[DecodeResult]:
        """Correct many ``(payload, checks)`` pairs."""
        return [self.correct(payload, checks) for payload, checks in pairs]

    # -- check-bit packing ---------------------------------------------------

    def _gather_checks(self, codeword: int) -> int:
        kernel = self._code._kernel
        if kernel is not None:
            return kernel.gather_checks(codeword)
        field = 0
        for i, pos in enumerate(self._code._check_positions):
            field |= ((codeword >> (pos - 1)) & 1) << i
        return field

    def _scatter(self, payload: int, checks: int) -> int:
        kernel = self._code._kernel
        if kernel is not None:
            return kernel.scatter_data(payload) | kernel.scatter_checks(checks)
        codeword = 0
        for data_index, pos in enumerate(self._code._data_positions):
            if (payload >> data_index) & 1:
                codeword |= 1 << (pos - 1)
        for i, pos in enumerate(self._code._check_positions):
            if (checks >> i) & 1:
                codeword |= 1 << (pos - 1)
        return codeword
