"""Table-driven codec kernels for the simulation hot loop.

Every simulated access used to walk per-bit Python loops: Hamming
assembly/extraction iterated all ~576 codeword positions, pin-symbol
extraction looped 64 pins x 8 beats, Reed-Solomon ran symbol-at-a-time
multiplications, and the line MAC made eight sequential SPECK calls with a
Python function call per cipher round. Paper-scale campaigns (the fig6 /
fig10 Monte-Carlo populations, the Section VII security sweeps, Row-Hammer
``read_all`` consumption scans) are therefore codec-bound.

This module holds the precomputed table/mask kernels that replace those
loops:

- :class:`HammingKernel` — run-based scatter/gather between the data word
  and the positional Hamming codeword (the data positions between
  consecutive check positions are contiguous, so the permutation is O(r)
  shift/mask operations instead of O(n) bit tests), plus per-check-bit
  coverage masks folded with ``(codeword & mask).bit_count() & 1``.
- :class:`RSKernel` — log-domain lookup tables for Reed-Solomon: per
  generator-coefficient multiplication tables for the encode LFSR and
  per-(syndrome, position) product tables so syndrome evaluation is pure
  table indexing.
- :func:`extract_pin_symbols_fast` / :func:`pin_symbols_to_int_fast` — the
  64x8 beat transpose as a numpy ``unpackbits``/``packbits`` round trip.
- :func:`speck_encrypt_lanes8` / :class:`SpeckBatchKernel` — the whole-line
  MAC computes all eight tweaked SPECK blocks inside one round loop (no
  per-word or per-round Python call), and batches arbitrarily many lines
  through vectorized numpy ``uint32`` rounds.

Every kernel is bit-exact with the reference implementation it replaces;
the references remain in their home modules as the oracle and are selected
with ``REPRO_KERNELS=reference`` (see ``docs/performance.md``). The
equivalence suite (``tests/test_kernel_equivalence.py``) and the
golden-parity corpus pin the equivalence.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from functools import lru_cache
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

#: Recognized values of the ``REPRO_KERNELS`` environment variable.
VALID_MODES = ("fast", "reference")

_ENV_VAR = "REPRO_KERNELS"


def _mode_from_env() -> str:
    mode = os.environ.get(_ENV_VAR, "fast").strip().lower() or "fast"
    if mode not in VALID_MODES:
        raise ValueError(
            f"{_ENV_VAR}={mode!r} is not recognized; use one of {VALID_MODES}"
        )
    return mode


_mode = _mode_from_env()


def kernel_mode() -> str:
    """The active kernel mode: ``"fast"`` (default) or ``"reference"``."""
    return _mode


def use_fast() -> bool:
    """True when the table-driven kernels are active."""
    return _mode == "fast"


def set_mode(mode: str) -> None:
    """Select the kernel mode for codecs constructed *from now on*.

    Codecs bind their kernel at construction, so an existing instance keeps
    the mode it was built under (that property is what lets the equivalence
    tests hold a fast and a reference codec side by side).
    """
    global _mode
    if mode not in VALID_MODES:
        raise ValueError(f"mode {mode!r} is not one of {VALID_MODES}")
    _mode = mode


@contextmanager
def forced_mode(mode: str) -> Iterator[None]:
    """Temporarily force a kernel mode (tests and benchmarks)."""
    previous = _mode
    set_mode(mode)
    try:
        yield
    finally:
        set_mode(previous)


# -- Hamming kernels -------------------------------------------------------------


class HammingKernel:
    """Precomputed scatter/gather + syndrome masks for one Hamming layout.

    The classic positional layout (positions 1..n, check bits at powers of
    two) leaves the data positions in contiguous runs between consecutive
    check positions, so data<->codeword permutation is a handful of
    shift/mask operations. The syndrome is the XOR of the (1-based)
    positions of all set codeword bits, i.e. bit ``i`` of the syndrome is
    the parity of the codeword masked by "every position with bit ``i``
    set" — one big-int AND plus ``bit_count`` per check bit.
    """

    def __init__(
        self,
        k: int,
        n: int,
        data_positions: Tuple[int, ...],
        check_positions: Tuple[int, ...],
    ):
        self.k = k
        self.n = n
        self.r = len(check_positions)
        #: (data_shift, codeword_shift, run_mask) per contiguous run.
        self._runs: List[Tuple[int, int, int]] = []
        run_start_pos = run_start_index = None
        previous = None
        for data_index, pos in enumerate(data_positions):
            if run_start_pos is None:
                run_start_pos, run_start_index = pos, data_index
            elif pos != previous + 1:
                width = previous - run_start_pos + 1
                self._runs.append(
                    (run_start_index, run_start_pos - 1, (1 << width) - 1)
                )
                run_start_pos, run_start_index = pos, data_index
            previous = pos
        if run_start_pos is not None:
            width = previous - run_start_pos + 1
            self._runs.append((run_start_index, run_start_pos - 1, (1 << width) - 1))
        #: Single-bit codeword masks of the check positions, LSB-first.
        self._check_bits: Tuple[int, ...] = tuple(
            1 << (pos - 1) for pos in check_positions
        )
        #: Coverage masks over codeword bits: mask ``i`` selects every
        #: position whose (1-based) index has bit ``i`` set — check
        #: positions included, exactly the XOR-of-positions syndrome.
        self._coverage: Tuple[int, ...] = tuple(
            sum(1 << (pos - 1) for pos in range(1, n + 1) if (pos >> i) & 1)
            for i in range(self.r)
        )
        #: For word-sized codes, encoding is GF(2)-linear in the data, so
        #: the full codeword (data scattered + check bits) is the XOR of
        #: one 256-entry table lookup per data byte.
        self._enc_bytes: Optional[List[List[int]]] = None
        if k <= 64:
            tables = []
            for byte_index in range((k + 7) // 8):
                table = []
                for value in range(256):
                    codeword = self.scatter_data(value << (8 * byte_index))
                    for cov, bit in zip(self._coverage, self._check_bits):
                        if (codeword & cov).bit_count() & 1:
                            codeword |= bit
                    table.append(codeword)
                tables.append(table)
            self._enc_bytes = tables

    # -- permutations -----------------------------------------------------------

    def scatter_data(self, data: int) -> int:
        """Place ``k`` data bits at their codeword positions (checks zero)."""
        codeword = 0
        for data_shift, cw_shift, mask in self._runs:
            codeword |= ((data >> data_shift) & mask) << cw_shift
        return codeword

    def gather_data(self, codeword: int) -> int:
        """Inverse of :meth:`scatter_data` (check bits ignored)."""
        data = 0
        for data_shift, cw_shift, mask in self._runs:
            data |= ((codeword >> cw_shift) & mask) << data_shift
        return data

    def scatter_checks(self, checks: int) -> int:
        """Place ``r`` packed check bits at their codeword positions."""
        codeword = 0
        for i, bit in enumerate(self._check_bits):
            if (checks >> i) & 1:
                codeword |= bit
        return codeword

    def gather_checks(self, codeword: int) -> int:
        """Pack the check positions of a codeword into ``r`` low bits."""
        checks = 0
        for i, bit in enumerate(self._check_bits):
            if codeword & bit:
                checks |= 1 << i
        return checks

    # -- encode/syndrome --------------------------------------------------------

    def encode(self, data: int) -> int:
        """Full codeword: scattered data plus computed check bits.

        With the data scattered and check positions still zero, check bit
        ``i`` is the parity of coverage mask ``i`` over the data bits —
        adding it afterwards makes the full-codeword syndrome zero.
        """
        if self._enc_bytes is not None:
            codeword = 0
            for table in self._enc_bytes:
                codeword ^= table[data & 0xFF]
                data >>= 8
            return codeword
        codeword = self.scatter_data(data)
        for cov, bit in zip(self._coverage, self._check_bits):
            if (codeword & cov).bit_count() & 1:
                codeword |= bit
        return codeword

    def syndrome(self, codeword: int) -> int:
        """XOR of the 1-based positions of all set codeword bits."""
        syndrome = 0
        for i, cov in enumerate(self._coverage):
            if (codeword & cov).bit_count() & 1:
                syndrome |= 1 << i
        return syndrome


@lru_cache(maxsize=None)
def hamming_kernel(
    k: int,
    n: int,
    data_positions: Tuple[int, ...],
    check_positions: Tuple[int, ...],
) -> HammingKernel:
    """Shared (immutable) kernel for one Hamming layout."""
    return HammingKernel(k, n, data_positions, check_positions)


# -- Reed-Solomon kernels --------------------------------------------------------


class RSKernel:
    """Packed-lane lookup tables for one systematic RS(n, k) instance.

    Both the check symbols and the syndromes are GF(2)-linear in the
    received symbols, and all symbols fit in 8 bits (m <= 8), so the
    ``n - k`` output symbols are packed into 8-bit lanes of one Python
    integer: entry ``[i][s]`` holds the packed contribution of symbol
    value ``s`` at codeword position ``i``, and a whole encode/syndrome
    evaluation is one table lookup + XOR per nonzero symbol.
    """

    def __init__(self, field, n: int, k: int, fcr: int, generator: Sequence[int]):
        if field.m > 8:
            raise ValueError("RSKernel packs symbols into 8-bit lanes (m <= 8)")
        self.n = n
        self.k = k
        self.n_checks = n - k
        size = field.size

        # Unit check vectors: checks(e_i) via the reference LFSR, once per
        # data position; lookup rows follow by scaling.
        def lfsr_checks(data: Sequence[int]) -> List[int]:
            remainder = [0] * self.n_checks
            for symbol in data:
                feedback = symbol ^ remainder[-1]
                remainder = [0] + remainder[:-1]
                if feedback:
                    for d in range(self.n_checks):
                        if generator[d]:
                            remainder[d] ^= field.mul(feedback, generator[d])
            return list(reversed(remainder))

        def pack(symbols: Sequence[int]) -> int:
            packed = 0
            for j, symbol in enumerate(symbols):
                packed |= symbol << (8 * j)
            return packed

        self._enc: List[List[int]] = []
        for i in range(k):
            unit = [0] * k
            unit[i] = 1
            u = lfsr_checks(unit)
            row = [pack([field.mul(s, c) for c in u]) for s in range(size)]
            self._enc.append(row)

        self._synd: List[List[int]] = []
        for i in range(n):
            coeffs = [
                field.pow(field.alpha_pow(fcr + j), n - 1 - i)
                for j in range(self.n_checks)
            ]
            row = [pack([field.mul(s, c) for c in coeffs]) for s in range(size)]
            self._synd.append(row)

    def encode_checks(self, data: Sequence[int]) -> List[int]:
        """The ``2t`` check symbols of a data word."""
        acc = 0
        enc = self._enc
        for i, symbol in enumerate(data):
            if symbol:
                acc ^= enc[i][symbol]
        return [(acc >> (8 * j)) & 0xFF for j in range(self.n_checks)]

    def syndromes(self, received: Sequence[int]) -> List[int]:
        """All ``2t`` syndromes (zero symbols contribute nothing)."""
        acc = 0
        synd = self._synd
        for i, symbol in enumerate(received):
            if symbol:
                acc ^= synd[i][symbol]
        return [(acc >> (8 * j)) & 0xFF for j in range(self.n_checks)]


_RS_KERNELS: Dict[Tuple[int, int, int, int], RSKernel] = {}


def rs_kernel(field, n: int, k: int, fcr: int, generator: Sequence[int]) -> RSKernel:
    """Shared kernel per (field, n, k, fcr); tables are built once."""
    key = (id(field), n, k, fcr)
    kernel = _RS_KERNELS.get(key)
    if kernel is None:
        kernel = RSKernel(field, n, k, fcr, generator)
        _RS_KERNELS[key] = kernel
    return kernel


# -- beat-transpose (pin symbol) kernels -----------------------------------------


def supports_pin_transpose(n_pins: int, n_beats: int) -> bool:
    """The numpy transpose covers the byte-aligned burst-8 layouts."""
    return n_beats == 8 and n_pins % 8 == 0


def extract_pin_symbols_fast(line: int, n_pins: int, n_beats: int) -> List[int]:
    """Per-pin symbols of a line via a numpy bit-matrix transpose."""
    raw = np.frombuffer(
        line.to_bytes(n_pins * n_beats // 8, "little"), dtype=np.uint8
    )
    bits = np.unpackbits(raw, bitorder="little").reshape(n_beats, n_pins)
    packed = np.packbits(bits.T, axis=1, bitorder="little")
    return packed[:, 0].tolist()


def pin_symbols_to_int_fast(symbols: Sequence[int], n_beats: int) -> int:
    """Inverse transpose: per-pin symbols back to a line integer."""
    arr = np.array([s & 0xFF for s in symbols], dtype=np.uint8)
    bits = np.unpackbits(arr[:, None], axis=1, bitorder="little")[:, :n_beats]
    flat = np.packbits(bits.T.reshape(-1), bitorder="little")
    return int.from_bytes(flat.tobytes(), "little")


def chipkill_pair_symbols(line: int) -> List[List[int]]:
    """All four beat-pairs' 16 data-chip symbols of a 512-bit line.

    ``result[pair][chip]`` packs chip ``chip``'s nibble from beat
    ``2*pair`` (low) and beat ``2*pair + 1`` (high) — the 8-bit RS symbol
    of the Chipkill codec — extracted for the whole line in one numpy
    nibble transpose.
    """
    raw = np.frombuffer(line.to_bytes(64, "little"), dtype=np.uint8)
    nibbles = np.empty(128, dtype=np.uint8)
    nibbles[0::2] = raw & 0x0F
    nibbles[1::2] = raw >> 4
    beats = nibbles.reshape(8, 16)
    symbols = beats[0::2] | (beats[1::2] << 4)
    return symbols.tolist()


# -- SPECK-64/128 kernels --------------------------------------------------------

_M32 = 0xFFFFFFFF
_M64 = (1 << 64) - 1


def speck_encrypt_block(round_keys: Sequence[int], block: int) -> int:
    """One SPECK-64/128 block with the round loop inlined (no calls)."""
    y = block & _M32
    x = (block >> 32) & _M32
    for k in round_keys:
        x = (((((x >> 8) | (x << 24)) & _M32) + y) & _M32) ^ k
        y = (((y << 3) | (y >> 29)) & _M32) ^ x
    return (x << 32) | y


#: One 32-bit lane per 64-bit slot of a big integer: 8 lanes never touch.
_LANES8_MASK = sum(0xFFFFFFFF << (64 * i) for i in range(8))
_LANES8_REP = sum(1 << (64 * i) for i in range(8))


def pack_round_keys8(round_keys: Sequence[int]) -> List[int]:
    """Replicate each round key across the 8 lanes of the SIMD kernel."""
    return [k * _LANES8_REP for k in round_keys]


def speck_encrypt_lanes8(
    packed_keys: Sequence[int], blocks: Sequence[int]
) -> List[int]:
    """Eight SPECK-64/128 blocks through one big-integer SIMD round loop.

    The whole-line MAC kernel: the eight 32-bit x (resp. y) words live in
    the 64-bit slots of one Python integer, so each ARX round is ~8 big-int
    operations for all lanes together. The slot padding makes it sound:
    rotations only smear bits into the high half of a slot (masked off),
    and per-lane sums peak at 33 bits so adds never carry across slots.
    ``packed_keys`` comes from :func:`pack_round_keys8`.
    """
    x = y = 0
    for i, block in enumerate(blocks):
        y |= (block & _M32) << (64 * i)
        x |= ((block >> 32) & _M32) << (64 * i)
    lanes = _LANES8_MASK
    for k in packed_keys:
        x = (((((x >> 8) | (x << 24)) & lanes) + y) & lanes) ^ k
        y = (((y << 3) | (y >> 29)) & lanes) ^ x
    return [
        ((((x >> (64 * i)) & _M32) << 32) | ((y >> (64 * i)) & _M32))
        for i in range(8)
    ]


class SpeckBatchKernel:
    """Vectorized SPECK-64/128 over numpy ``uint32`` lanes.

    Unsigned numpy arithmetic wraps mod 2^32, which is exactly the ARX
    round — so a batch of N blocks runs all 27 rounds as a handful of
    whole-array operations each.
    """

    def __init__(self, round_keys: Sequence[int]):
        self._round_keys = [np.uint32(k) for k in round_keys]

    def encrypt(self, blocks: np.ndarray) -> np.ndarray:
        """Encrypt a ``uint64`` array of blocks, elementwise."""
        blocks = np.ascontiguousarray(blocks, dtype=np.uint64)
        y = (blocks & np.uint64(_M32)).astype(np.uint32)
        x = (blocks >> np.uint64(32)).astype(np.uint32)
        for k in self._round_keys:
            x = (((x >> np.uint32(8)) | (x << np.uint32(24))) + y) ^ k
            y = ((y << np.uint32(3)) | (y >> np.uint32(29))) ^ x
        return (x.astype(np.uint64) << np.uint64(32)) | y.astype(np.uint64)
