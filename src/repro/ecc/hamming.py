"""Parameterizable Hamming codes.

Two codecs are provided:

- :class:`HammingSEC` — single-error-correcting Hamming code with ``k``
  data bits and the minimum number of check bits ``r`` satisfying
  ``2**r >= k + r + 1``. This is the "ECC-1" primitive of the paper: for a
  64-byte line plus its MAC (``k = 566``), ``r = 10`` — the 10 ECC-1 bits
  of Figure 3b / Figure 5.
- :class:`HammingSECDED` — the extended Hamming code (one extra overall
  parity bit) providing single-error correction *and* double-error
  detection. With ``k = 64`` this is the conventional (72,64) SECDED code
  of ECC DIMMs (Figure 3a).

Codewords are Python integers. Internally the classic positional layout is
used: codeword positions are numbered from 1, check bits sit at the
power-of-two positions, and the syndrome of a single-bit error equals the
(1-based) position of the flipped bit. The extended parity bit, when
present, is appended above position ``n``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.ecc import kernels
from repro.utils.bits import parity


class DecodeStatus(enum.Enum):
    """Outcome of an ECC decode."""

    #: Syndrome clean: the codeword is consistent (no error, or an
    #: undetectable pattern).
    CLEAN = "clean"
    #: A single-bit error was located and corrected.
    CORRECTED = "corrected"
    #: An uncorrectable error was detected (DED fired).
    DETECTED_UE = "detected_ue"


@dataclass(frozen=True)
class DecodeResult:
    """Result of decoding a (possibly corrupted) codeword."""

    data: int
    status: DecodeStatus
    #: 0-based index into the *codeword* of the corrected bit, or None.
    corrected_bit: Optional[int] = None

    @property
    def ok(self) -> bool:
        """True when the decode did not flag an uncorrectable error."""
        return self.status is not DecodeStatus.DETECTED_UE


def _check_bit_count(k: int) -> int:
    """Minimum r with 2**r >= k + r + 1."""
    r = 1
    while (1 << r) < k + r + 1:
        r += 1
    return r


class HammingSEC:
    """Single-error-correcting Hamming code over ``k`` data bits.

    ``encode`` maps a ``k``-bit data integer to an ``n = k + r``-bit
    codeword integer; ``decode`` corrects any single flipped codeword bit.
    Double-bit errors are *miscorrected* (this is a distance-3 code) —
    SafeGuard relies on the MAC, not on ECC-1, for detection.
    """

    def __init__(self, k: int):
        if k < 1:
            raise ValueError("k must be positive")
        self.k = k
        self.r = _check_bit_count(k)
        self.n = k + self.r
        # Positional layout: positions 1..n; powers of two hold check bits.
        self._data_positions: List[int] = [
            pos for pos in range(1, self.n + 1) if pos & (pos - 1)
        ]
        self._check_positions: List[int] = [1 << i for i in range(self.r)]
        # Per-check-bit masks over data *positions*, precomputed for speed:
        # check bit i covers every position with bit i set.
        self._coverage: List[int] = []
        for i in range(self.r):
            mask = 0
            for data_index, pos in enumerate(self._data_positions):
                if (pos >> i) & 1:
                    mask |= 1 << data_index
            self._coverage.append(mask)
        # Table-driven scatter/gather + syndrome kernel (shared per layout);
        # None under REPRO_KERNELS=reference, which keeps the positional
        # loops below as the oracle.
        self._kernel = (
            kernels.hamming_kernel(
                k,
                self.n,
                tuple(self._data_positions),
                tuple(self._check_positions),
            )
            if kernels.use_fast()
            else None
        )

    def encode(self, data: int) -> int:
        """Encode ``k`` data bits into an ``n``-bit codeword."""
        if data < 0 or data >> self.k:
            raise ValueError(f"data does not fit in {self.k} bits")
        if self._kernel is not None:
            return self._kernel.encode(data)
        check = 0
        for i in range(self.r):
            check |= parity(data & self._coverage[i]) << i
        return self._assemble(data, check)

    def decode(self, codeword: int) -> DecodeResult:
        """Decode a codeword, correcting at most one flipped bit."""
        if codeword < 0 or codeword >> self.n:
            raise ValueError(f"codeword does not fit in {self.n} bits")
        syndrome = self._syndrome(codeword)
        if syndrome == 0:
            return DecodeResult(self._extract_data(codeword), DecodeStatus.CLEAN)
        if syndrome > self.n:
            # A syndrome pointing past the codeword cannot be a single-bit
            # error; with plain SEC this is the only detectable UE pattern.
            return DecodeResult(
                self._extract_data(codeword), DecodeStatus.DETECTED_UE
            )
        corrected = codeword ^ (1 << (syndrome - 1))
        return DecodeResult(
            self._extract_data(corrected), DecodeStatus.CORRECTED, syndrome - 1
        )

    # -- internals ---------------------------------------------------------

    def _assemble(self, data: int, check: int) -> int:
        if self._kernel is not None:
            return self._kernel.scatter_data(data) | self._kernel.scatter_checks(
                check
            )
        codeword = 0
        for data_index, pos in enumerate(self._data_positions):
            if (data >> data_index) & 1:
                codeword |= 1 << (pos - 1)
        for i, pos in enumerate(self._check_positions):
            if (check >> i) & 1:
                codeword |= 1 << (pos - 1)
        return codeword

    def _extract_data(self, codeword: int) -> int:
        if self._kernel is not None:
            return self._kernel.gather_data(codeword)
        data = 0
        for data_index, pos in enumerate(self._data_positions):
            if (codeword >> (pos - 1)) & 1:
                data |= 1 << data_index
        return data

    def _syndrome(self, codeword: int) -> int:
        if self._kernel is not None:
            return self._kernel.syndrome(codeword)
        syndrome = 0
        remaining = codeword
        pos = 0
        while remaining:
            low = remaining & -remaining
            pos = low.bit_length()  # 1-based position of this set bit
            syndrome ^= pos
            remaining ^= low
        return syndrome


class HammingSECDED(HammingSEC):
    """Extended Hamming code: SEC plus double-error detection.

    One overall-parity bit is appended above the SEC codeword. Decode
    outcomes follow the classic truth table:

    ========  ===============  =================================
    syndrome  overall parity   verdict
    ========  ===============  =================================
    0         even             clean
    0         odd              parity bit itself flipped (corrected)
    != 0      odd              single-bit error (corrected)
    != 0      even             double-bit error (DETECTED_UE)
    ========  ===============  =================================
    """

    def __init__(self, k: int):
        super().__init__(k)
        self.n_total = self.n + 1  #: codeword width including overall parity

    def encode(self, data: int) -> int:
        inner = super().encode(data)
        return inner | (parity(inner) << self.n)

    def decode(self, codeword: int) -> DecodeResult:
        if codeword < 0 or codeword >> self.n_total:
            raise ValueError(f"codeword does not fit in {self.n_total} bits")
        inner = codeword & ((1 << self.n) - 1)
        overall_odd = parity(codeword) == 1
        syndrome = self._syndrome(inner)
        if syndrome == 0:
            if not overall_odd:
                return DecodeResult(self._extract_data(inner), DecodeStatus.CLEAN)
            # Only the overall parity bit flipped.
            return DecodeResult(
                self._extract_data(inner), DecodeStatus.CORRECTED, self.n
            )
        if not overall_odd or syndrome > self.n:
            return DecodeResult(
                self._extract_data(inner), DecodeStatus.DETECTED_UE
            )
        corrected = inner ^ (1 << (syndrome - 1))
        return DecodeResult(
            self._extract_data(corrected), DecodeStatus.CORRECTED, syndrome - 1
        )
