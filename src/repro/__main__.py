"""CLI: regenerate paper tables/figures.

Usage::

    python -m repro list            # available experiments
    python -m repro fig6            # one experiment
    python -m repro all             # everything (interactive scale)
"""

import sys

from repro.experiments.runner import experiment_names, run_all, run_experiment


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help", "help"):
        print(__doc__)
        print("Experiments:", ", ".join(experiment_names()))
        return 0
    name = argv[0]
    if name == "list":
        for experiment in experiment_names():
            print(experiment)
        return 0
    if name == "all":
        run_all()
        return 0
    try:
        run_experiment(name)
    except KeyError as error:
        print(error, file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
