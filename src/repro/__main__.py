"""CLI: regenerate paper tables/figures.

Usage::

    python -m repro list                     # available experiments
    python -m repro schemes                  # registered memory organizations
    python -m repro fig6                     # one experiment
    python -m repro fig6 --workers 8         # parallel Monte-Carlo (same output)
    python -m repro fig6 --scheme secded     # restrict to one organization
    python -m repro fig6 --engine fast       # vectorized Monte-Carlo engine
    python -m repro fig7 --workers 8         # parallel perf campaign (same output)
    python -m repro fig7 --cache-dir .cells  # resumable per-cell result cache
    python -m repro fig7 --profile prof.json # + per-pass cProfile dump
    python -m repro hammer-sweep --workers 4 --cache-dir .sweep
    python -m repro playbook list            # named attack scenarios
    python -m repro playbook show many-sided # format + compiled preview
    python -m repro playbook lint            # compile the whole library
    python -m repro playbook run --scenario all --workers 2 --cache-dir .pb
    python -m repro campaign-status .sweep   # summarize a campaign store
    python -m repro serve --store-dir .shared --port 7797
    python -m repro fig7 --store-url HOST:7797      # shared networked cache
    python -m repro submit HOST:7797 hammer-sweep --watch
    python -m repro campaign-status --remote HOST:7797
    python -m repro all                      # everything (interactive scale)

``--workers N`` fans the Monte-Carlo reliability experiments
(``REPRO_MC_WORKERS`` environment fallback) and the cycle-level
performance campaigns (``REPRO_PERF_WORKERS`` fallback) across N
processes; results are bit-identical to the sequential run in both
engines. ``--scheme NAME`` (a name from ``python -m repro schemes``)
restricts scheme-aware experiments (fig1c/fig6/fig7/fig10/fig11) to a
single memory organization. ``--engine fast|reference`` selects the
simulation engine for the engine-aware experiments: the Monte-Carlo
reliability figures fig6/fig10 (``REPRO_FAULTSIM`` fallback) and the
cycle-level performance figures fig7/fig11/fig12/fig13 (``REPRO_PERF``
fallback). Both vectorized fast paths are statistically equivalent to
their reference loops, not bit-identical, and campaign caches /
checkpoints never cross engines. ``--cache-dir PATH`` persists one verified JSON
result per campaign cell (the performance figures fig7/fig11/fig12/fig13
and the ``hammer-sweep`` attack campaign): a killed or re-scoped campaign
recomputes only the cells it is missing. ``campaign-status DIR`` reads the
store's append-only index and prints per-campaign completion and
failure counts (``--remote HOST:PORT`` asks a running campaign server
instead). The
generic ``REPRO_WORKERS`` parallelizes every campaign family at once; the
engine-specific variables above take precedence over it. ``--profile
PATH`` (fig7/fig11) additionally writes a per-pass cProfile breakdown of
the fast perf engine — synthesis vs. content vs. timing, top functions
by cumulative time — as JSON (see ``scripts/profile_fastpath.py``).

Distributed serving: ``python -m repro serve --store-dir DIR`` starts
the asyncio campaign server (shared fingerprint-verified result store +
async job API; see ``repro.campaign.server``); ``--store-url HOST:PORT``
on the campaign experiments (fig6/fig7/fig11/fig12/fig13/hammer-sweep)
routes their cells through that shared store so concurrent runs divide
a grid instead of recomputing it; ``python -m repro submit HOST:PORT
KIND`` enqueues a server-side campaign job (``hammer-sweep`` / ``perf``
/ ``faultsim``), ``--watch`` streaming its progress events.
``REPRO_SCHEDULER=steal`` switches campaign fan-out to the work-stealing
scheduler (persistent workers; same bit-identical results).
"""

import sys

from repro.core import registry
from repro.experiments.runner import experiment_names, run_all, run_experiment


def _parse_option(argv, flag, parse):
    """Pop ``--flag VALUE`` / ``--flag=VALUE`` from argv; None if absent."""
    value = None
    remaining = []
    index = 0
    while index < len(argv):
        arg = argv[index]
        if arg == flag:
            if index + 1 >= len(argv):
                raise ValueError(f"{flag} requires a value")
            value = parse(argv[index + 1])
            index += 2
            continue
        if arg.startswith(flag + "="):
            value = parse(arg.split("=", 1)[1])
            index += 1
            continue
        remaining.append(arg)
        index += 1
    return value, remaining


def _parse_workers(argv):
    workers, remaining = _parse_option(argv, "--workers", int)
    if workers is not None and workers < 1:
        raise ValueError(f"--workers must be >= 1, got {workers}")
    return workers, remaining


def _print_campaign_status(
    directory=None, store_url=None
) -> int:
    """Summarize a campaign store (local index or a remote server's)."""
    if store_url is not None:
        from repro.campaign import CampaignClient

        with CampaignClient(store_url) as client:
            summary = client.status()
        source = f"server {store_url}"
    else:
        from repro.campaign import summarize_index

        summary = summarize_index(directory)
        source = repr(directory)
    if not summary:
        print(f"no campaign index found in {source}", file=sys.stderr)
        return 1
    for name, counts in summary.items():
        print(
            f"{name:16} completed {counts['completed']:6}  "
            f"cells {counts['cells']:6}  index entries {counts['entries']:6}  "
            f"failures {counts.get('failures', 0):6}"
        )
    return 0


def _serve(argv) -> int:
    """``python -m repro serve``: the asyncio campaign server."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Serve a shared campaign result store + job API.",
    )
    parser.add_argument(
        "--store-dir",
        default=".campaign-store",
        help="directory backing the shared result store",
    )
    parser.add_argument("--host", default="127.0.0.1")
    from repro.campaign.wire import DEFAULT_PORT

    parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="default worker count for submitted jobs",
    )
    args = parser.parse_args(argv)
    from repro.campaign.server import run_server

    run_server(
        args.store_dir, host=args.host, port=args.port, workers=args.workers
    )
    return 0


def _submit(argv) -> int:
    """``python -m repro submit``: enqueue a job on a campaign server."""
    import argparse
    import json

    from repro.campaign.server import JOB_KINDS

    parser = argparse.ArgumentParser(
        prog="python -m repro submit",
        description="Submit a campaign job to a running server.",
    )
    parser.add_argument("url", help="server address, HOST:PORT")
    parser.add_argument("kind", choices=sorted(JOB_KINDS))
    parser.add_argument(
        "--params",
        default="{}",
        help='job parameters as JSON, e.g. \'{"schemes": ["secded"]}\'',
    )
    parser.add_argument(
        "--watch",
        action="store_true",
        help="stream progress events and wait for the job to finish",
    )
    args = parser.parse_args(argv)
    try:
        params = json.loads(args.params)
    except ValueError as error:
        print(f"--params is not valid JSON: {error}", file=sys.stderr)
        return 2
    from repro.campaign import CampaignClient

    with CampaignClient(args.url) as client:
        job_id = client.submit(args.kind, params)
        print(f"submitted {job_id} ({args.kind}) to {args.url}")
        if not args.watch:
            return 0
        state = "running"
        for event in client.watch(job_id):
            if event.get("event") == "progress":
                print(f"  {event.get('describe', '')}", file=sys.stderr)
            elif event.get("event") == "end":
                state = event.get("state", "done")
                if event.get("error"):
                    print(f"{job_id} failed: {event['error']}", file=sys.stderr)
        if state != "done":
            return 1
        print(json.dumps(client.job_results(job_id), indent=2, sort_keys=True))
    return 0


def _playbook(argv, workers=None, scheme=None, cache_dir=None,
              store_url=None) -> int:
    """``python -m repro playbook``: the declarative attack-playbook engine.

    Generic options (``--workers`` / ``--scheme`` / ``--cache-dir`` /
    ``--store-url``) arrive pre-parsed from :func:`main`, same as for
    the figure experiments.
    """
    import argparse
    import json

    from repro.rowhammer import playbook as pb

    parser = argparse.ArgumentParser(
        prog="python -m repro playbook",
        description="Compile and run declarative Row-Hammer attack playbooks.",
    )
    parser.add_argument(
        "action", choices=("run", "list", "show", "lint"),
        help="run the campaign grid, list/show library scenarios, or "
        "lint-compile the whole library",
    )
    parser.add_argument(
        "target", nargs="?", default=None,
        help="scenario name (for 'show')",
    )
    parser.add_argument(
        "--scenario", action="append", default=None, metavar="NAME",
        help="scenario to run (repeatable; 'all' or omitted = whole library)",
    )
    parser.add_argument(
        "--mitigation", action="append", default=None, metavar="NAME",
        help="mitigation to run against (repeatable; default: all)",
    )
    parser.add_argument(
        "--seeds", default="3",
        help="comma-separated point seeds (default: 3)",
    )
    parser.add_argument(
        "--budget", type=int, default=None,
        help="activation budget per refresh window (default: "
        f"{pb.PlaybookConfig().budget})",
    )
    parser.add_argument(
        "--file", action="append", default=[], metavar="PATH",
        help="JSON file with one playbook dict (or a list of them) to add "
        "to the run (repeatable)",
    )
    args = parser.parse_args(argv)

    if args.action == "list":
        for spec in pb.SCENARIOS.values():
            variants = len(pb.expand_spec(spec))
            suffix = f" ({variants} variants)" if variants > 1 else ""
            print(f"{spec.name:24} {spec.summary}{suffix}")
        return 0
    if args.action == "show":
        if not args.target:
            print("usage: python -m repro playbook show NAME", file=sys.stderr)
            return 2
        spec = pb.scenario(args.target)
        print(json.dumps(spec.to_dict(), indent=2, sort_keys=True))
        config = pb.PlaybookConfig()
        for variant in pb.expand_spec(spec):
            pattern = pb.compile_playbook(
                variant, base_row=config.victim_row, n_rows=config.n_rows
            )
            head = list(pattern.activations(24))
            print(
                f"{variant.name}: aggressors {tuple(pattern.aggressors)} "
                f"victims {tuple(pattern.intended_victims)}\n"
                f"  first activations: {head}"
            )
        return 0
    if args.action == "lint":
        for line in pb.lint_scenarios():
            print(line)
        print(f"{len(pb.SCENARIOS)} scenarios OK")
        return 0

    # action == "run"
    extra_playbooks = []
    for path in args.file:
        with open(path) as handle:
            payload = json.load(handle)
        extra_playbooks.extend(payload if isinstance(payload, list) else [payload])
    config = pb.PlaybookConfig()
    if args.budget is not None:
        config.budget = args.budget
    scenarios = args.scenario
    if scenarios is None or "all" in scenarios:
        scenarios = None  # whole library + every --file playbook
    seeds = tuple(int(seed) for seed in args.seeds.split(",") if seed)
    cells = pb.plan_playbook(
        scenarios=scenarios,
        mitigations=tuple(args.mitigation) if args.mitigation
        else pb.DEFAULT_MITIGATIONS,
        schemes=(scheme,) if scheme else None,
        seeds=seeds,
        config=config,
        extra_playbooks=extra_playbooks,
    )
    from repro.experiments.runner import _open_store, _print_progress

    progress = _print_progress if workers and workers > 1 else None
    with _open_store(store_url) as store:
        outcomes = pb.run_playbook(
            cells,
            config,
            workers=workers,
            cache_dir=cache_dir,
            store=store,
            progress=progress,
            extra_playbooks=extra_playbooks,
        )
    pb.report_playbook(outcomes)
    return 0


def _print_schemes() -> None:
    """The registry listing: name, capability flags, description."""
    for info in registry.schemes():
        flags = ",".join(info.capabilities) or "-"
        print(f"{info.name:28} {flags:36} {info.display}: {info.summary}")


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    try:
        workers, argv = _parse_workers(argv)
        scheme, argv = _parse_option(argv, "--scheme", str)
        engine, argv = _parse_option(argv, "--engine", str)
        cache_dir, argv = _parse_option(argv, "--cache-dir", str)
        profile_to, argv = _parse_option(argv, "--profile", str)
        store_url, argv = _parse_option(argv, "--store-url", str)
        if engine is not None:
            # Both engine switches recognize the same names; the runner
            # resolves against the right module per experiment.
            from repro.faultsim import fastpath

            engine = fastpath.resolve_engine(engine)  # validates the name
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    if not argv or argv[0] in ("-h", "--help", "help"):
        print(__doc__)
        print("Experiments:", ", ".join(experiment_names()))
        print("Schemes:", ", ".join(registry.names()))
        return 0
    name = argv[0]
    if name == "list":
        for experiment in experiment_names():
            print(experiment)
        return 0
    if name == "schemes":
        _print_schemes()
        return 0
    if name == "playbook":
        try:
            return _playbook(
                argv[1:],
                workers=workers,
                scheme=scheme,
                cache_dir=cache_dir,
                store_url=store_url,
            )
        except (OSError, ValueError) as error:
            print(error, file=sys.stderr)
            return 2
    if name == "serve":
        return _serve(argv[1:])
    if name == "submit":
        return _submit(argv[1:])
    if name == "campaign-status":
        remote, rest = _parse_option(argv[1:], "--remote", str)
        if remote is not None and not rest:
            return _print_campaign_status(store_url=remote)
        if remote is None and len(rest) == 1:
            return _print_campaign_status(rest[0])
        print(
            "usage: python -m repro campaign-status CACHE_DIR | "
            "--remote HOST:PORT",
            file=sys.stderr,
        )
        return 2
    if name == "all":
        run_all(workers=workers)
        return 0
    try:
        run_experiment(
            name,
            workers=workers,
            scheme=scheme,
            engine=engine,
            cache_dir=cache_dir,
            profile_to=profile_to,
            store_url=store_url,
        )
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args else error
        print(message, file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
