"""CLI: regenerate paper tables/figures.

Usage::

    python -m repro list                # available experiments
    python -m repro fig6                # one experiment
    python -m repro fig6 --workers 8    # parallel Monte-Carlo (same output)
    python -m repro all                 # everything (interactive scale)

``--workers N`` (or the ``REPRO_MC_WORKERS`` environment variable) fans
the Monte-Carlo reliability experiments across N processes; results are
bit-identical to the sequential run.
"""

import sys

from repro.experiments.runner import experiment_names, run_all, run_experiment


def _parse_workers(argv):
    """Pop ``--workers N`` / ``--workers=N`` from argv; None if absent."""
    workers = None
    remaining = []
    index = 0
    while index < len(argv):
        arg = argv[index]
        if arg == "--workers":
            if index + 1 >= len(argv):
                raise ValueError("--workers requires a value")
            workers = int(argv[index + 1])
            index += 2
            continue
        if arg.startswith("--workers="):
            workers = int(arg.split("=", 1)[1])
            index += 1
            continue
        remaining.append(arg)
        index += 1
    if workers is not None and workers < 1:
        raise ValueError(f"--workers must be >= 1, got {workers}")
    return workers, remaining


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    try:
        workers, argv = _parse_workers(argv)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    if not argv or argv[0] in ("-h", "--help", "help"):
        print(__doc__)
        print("Experiments:", ", ".join(experiment_names()))
        return 0
    name = argv[0]
    if name == "list":
        for experiment in experiment_names():
            print(experiment)
        return 0
    if name == "all":
        run_all(workers=workers)
        return 0
    try:
        run_experiment(name, workers=workers)
    except KeyError as error:
        print(error, file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
