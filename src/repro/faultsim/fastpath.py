"""Vectorized Monte-Carlo fast path (the ``REPRO_FAULTSIM`` switch).

The scalar engine in :mod:`repro.faultsim.montecarlo` builds a
``random.Random`` per busy module, sorts arrival times, and dispatches to
a class-based evaluator — interpreter overhead that dominates
paper-scale campaigns even after multi-process sharding. This module is
the FaultSim-style observation turned into an engine: with Table III FIT
rates the overwhelming majority of busy modules draw **exactly one**
fault, and a fault arriving at a clean module classifies with
``existing == []``, so its outcome is a pure function of
*(scheme, fault scope, is-ECC-chip)*.

The fast engine therefore:

- **derives** a per-scheme outcome table by probing the scheme's own
  evaluator with clean-module faults (Table IV semantics stay
  single-sourced in :mod:`repro.faultsim.evaluators`; the table is never
  re-encoded by hand, and the derivation cross-checks several placements
  per cell);
- batch-draws arrival times, fault modes, and chip indices for all
  single-fault modules with a vectorized counter-based RNG
  (:func:`derive_seed`'s splitmix64 mixing applied to whole index
  arrays), then classifies them with one array table-lookup — no
  ``FaultInstance``, no ``random.Random``, no method dispatch;
- falls back to the scalar evaluator loop — the exact per-module
  ``derive_seed(seed, 0x51A7, i)`` stream — for multi-fault modules, so
  those records are **bit-identical** to the reference engine's.

Because every draw is a pure function of ``(seed, global module index)``,
the fast engine is shard-invariant like the reference one: any
worker/shard count reproduces the same fast-engine result. Fast and
reference outputs are *statistically* equivalent (same Poisson fault
counts, same per-arrival distributions) but not bit-identical — the
single-fault draws come from different streams. The engine is recorded
in :meth:`MonteCarloConfig.science_fingerprint`, so checkpoints never
resume across modes.

Mode resolution: ``MonteCarloConfig.engine`` > :func:`set_engine` /
``REPRO_FAULTSIM`` environment variable > ``"reference"`` (the default,
preserving PR 1's bit-identical sequential/parallel contract).
"""

from __future__ import annotations

import os
import random
from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.faultsim.evaluators import Outcome
from repro.faultsim.faults import place_fault
from repro.faultsim.fit import FaultMode
from repro.faultsim.geometry import ModuleGeometry
from repro.utils.rng import child_seeds, derive_seed, unit_uniforms

#: Recognized values of the ``REPRO_FAULTSIM`` environment variable.
VALID_ENGINES = ("fast", "reference")

ENGINE_ENV = "REPRO_FAULTSIM"

#: Salt of the fast engine's counter-based draw stream (disjoint from the
#: reference streams 0xFA017 / 0x51A7 by construction of derive_seed).
FAST_STREAM_SALT = 0xFA57


def _engine_from_env() -> str:
    engine = os.environ.get(ENGINE_ENV, "reference").strip().lower() or "reference"
    if engine not in VALID_ENGINES:
        raise ValueError(
            f"{ENGINE_ENV}={engine!r} is not recognized; use one of {VALID_ENGINES}"
        )
    return engine


_engine = _engine_from_env()


def engine_mode() -> str:
    """The active engine: ``"reference"`` (default) or ``"fast"``."""
    return _engine


def use_fast() -> bool:
    """True when the vectorized engine is active."""
    return _engine == "fast"


def set_engine(engine: str) -> None:
    """Select the Monte-Carlo engine for runs started *from now on*."""
    global _engine
    if engine not in VALID_ENGINES:
        raise ValueError(f"engine {engine!r} is not one of {VALID_ENGINES}")
    _engine = engine


@contextmanager
def forced_mode(engine: str) -> Iterator[None]:
    """Temporarily force an engine (tests and benchmarks)."""
    previous = _engine
    set_engine(engine)
    try:
        yield
    finally:
        set_engine(previous)


def resolve_engine(engine: Optional[str] = None) -> str:
    """Resolve an explicit/config engine against the process-wide mode.

    ``engine`` (usually ``MonteCarloConfig.engine``) wins when set;
    otherwise the process mode (``set_engine`` / ``REPRO_FAULTSIM``)
    applies. Always returns a member of :data:`VALID_ENGINES`.
    """
    if engine is None:
        return _engine
    if engine not in VALID_ENGINES:
        raise ValueError(f"engine {engine!r} is not one of {VALID_ENGINES}")
    return engine


# child_seeds / unit_uniforms live in repro.utils.rng (shared with the
# REPRO_PERF fast engine); the imports above re-export them here.


# -- derived outcome tables ------------------------------------------------------

#: Outcome <-> small integer codes used in the classification arrays.
OUTCOME_CODES = {Outcome.CORRECTED: 0, Outcome.DUE: 1, Outcome.SDC: 2}
CODE_OUTCOMES = (Outcome.CORRECTED, Outcome.DUE, Outcome.SDC)

#: Placements probed per table cell; a clean-module outcome that varies
#: with position would make the table lookup unsound, so disagreement
#: raises instead of silently mis-classifying.
_PROBES_PER_CELL = 3


def derive_outcome_table(
    evaluator,
    geometry: ModuleGeometry,
    categories: Sequence[Tuple[FaultMode, bool]],
) -> np.ndarray:
    """Clean-module outcome codes, derived by probing the evaluator.

    Returns a ``(len(categories), 2)`` uint8 array indexed by
    ``[category, is_ecc_chip]``. The evaluator is the single source of
    truth: each cell is ``evaluator.classify([], fault)`` for a fault of
    that category placed on a data (resp. ECC) chip. Several random
    placements are probed per cell and must agree — the clean-module
    outcome contract is *(scope, is-ECC-chip)* only.
    """
    probe_rng = random.Random(0xDE81)
    data_chip = 0
    ecc_chip = (
        geometry.data_chips_per_rank
        if geometry.ecc_chips_per_rank > 0
        else data_chip
    )
    table = np.zeros((len(categories), 2), dtype=np.uint8)
    for index, (mode, transient) in enumerate(categories):
        for is_ecc, chip in ((0, data_chip), (1, ecc_chip)):
            outcomes = {
                evaluator.classify(
                    [],
                    place_fault(mode.scope, transient, 0.0, chip, geometry, probe_rng),
                )
                for _ in range(_PROBES_PER_CELL)
            }
            if len(outcomes) != 1:
                raise ValueError(
                    f"{type(evaluator).__name__} clean-module outcome for "
                    f"scope={mode.scope.value} is_ecc={bool(is_ecc)} is "
                    f"position-dependent ({sorted(o.value for o in outcomes)}); "
                    "the vectorized engine cannot table-classify it"
                )
            table[index, is_ecc] = OUTCOME_CODES[outcomes.pop()]
    return table


# -- the vectorized range simulator ----------------------------------------------


def simulate_range_fast(
    evaluator,
    geometry: ModuleGeometry,
    config,
    fault_counts: np.ndarray,
    lo: int = 0,
    hi: Optional[int] = None,
) -> List["FailureRecord"]:
    """Vectorized counterpart of :func:`simulate_range` (same contract).

    Single-fault modules are classified in one table lookup over batched
    draws; modules with two or more faults run the exact scalar
    per-module loop (their records are bit-identical to the reference
    engine's). Deterministic in ``(seed, lo, hi)`` and shard-invariant:
    disjoint ranges covering the population reproduce the full run.
    """
    from repro.faultsim.montecarlo import (
        FailureRecord,
        _mode_categories,
        _simulate_module,
    )
    from repro.utils import units

    if hi is None:
        hi = lo + len(fault_counts)
    if hi - lo != len(fault_counts):
        raise ValueError(
            f"fault_counts has {len(fault_counts)} entries for range [{lo}, {hi})"
        )
    total_hours = config.years * units.HOURS_PER_YEAR
    categories, cumulative = _mode_categories(config)
    counts = np.asarray(fault_counts)

    records: List[FailureRecord] = []

    single_local = np.nonzero(counts == 1)[0]
    if single_local.size:
        indices = single_local.astype(np.uint64) + np.uint64(lo)
        base = child_seeds(
            np.uint64(derive_seed(config.seed, FAST_STREAM_SALT)), indices
        )
        # Scrubbing never matters here: one fault on a clean module has
        # nothing resident to scrub against.
        times = unit_uniforms(child_seeds(base, 0)) * total_hours
        category = np.searchsorted(
            cumulative, unit_uniforms(child_seeds(base, 1)), side="left"
        )
        chips = child_seeds(base, 2) % np.uint64(geometry.chips_per_rank)
        is_ecc = (chips >= np.uint64(geometry.data_chips_per_rank)).astype(np.intp)
        table = derive_outcome_table(evaluator, geometry, categories)
        codes = table[category, is_ecc]
        scope_values = [mode.scope.value for mode, _ in categories]
        for position in np.nonzero(codes)[0]:
            records.append(
                FailureRecord(
                    float(times[position]),
                    CODE_OUTCOMES[int(codes[position])],
                    scope_values[int(category[position])],
                )
            )

    for local_index in np.nonzero(counts >= 2)[0]:
        record = _simulate_module(
            evaluator,
            geometry,
            config,
            lo + int(local_index),
            int(counts[local_index]),
            categories,
            cumulative,
            total_hours,
        )
        if record is not None:
            records.append(record)
    return records
