"""Fault modes and field failure rates (Table III).

FIT rates per DRAM device from Sridharan & Liberty, "A study of DRAM
failures in the field" (SC'12) [43], exactly as reproduced in the paper's
Table III. One FIT = one failure per billion device-hours.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Dict, List


class Scope(enum.Enum):
    """Spatial extent of a fault within (or across) chips."""

    BIT = "bit"  #: one cell
    COLUMN = "column"  #: one I/O bit-line / pin: vertical 1-bit-per-word
    WORD = "word"  #: one chip's full contribution to one word
    ROW = "row"  #: one row of one bank
    BANK = "bank"  #: one whole bank
    MULTIBANK = "multibank"  #: several banks of one chip
    MULTIRANK = "multirank"  #: the same chip position across ranks


@dataclass(frozen=True)
class FaultMode:
    """One row of Table III."""

    scope: Scope
    transient_fit: float
    permanent_fit: float

    @property
    def total_fit(self) -> float:
        return self.transient_fit + self.permanent_fit


#: Table III: failures per billion device-hours per device [43].
FAULT_MODES: List[FaultMode] = [
    FaultMode(Scope.BIT, transient_fit=14.2, permanent_fit=18.6),
    FaultMode(Scope.COLUMN, transient_fit=1.4, permanent_fit=5.6),
    FaultMode(Scope.WORD, transient_fit=1.4, permanent_fit=0.3),
    FaultMode(Scope.ROW, transient_fit=0.2, permanent_fit=8.2),
    FaultMode(Scope.BANK, transient_fit=0.8, permanent_fit=10.0),
    FaultMode(Scope.MULTIBANK, transient_fit=0.3, permanent_fit=1.4),
    FaultMode(Scope.MULTIRANK, transient_fit=0.9, permanent_fit=2.8),
]


def total_fit(modes: List[FaultMode] = FAULT_MODES) -> float:
    """Aggregate FIT per device across all modes (Table III total: 66.1)."""
    return sum(mode.total_fit for mode in modes)


def scale_fit(factor: float, modes: List[FaultMode] = FAULT_MODES) -> List[FaultMode]:
    """Uniformly scale all FIT rates (Section V-E's 10x experiment)."""
    return [
        replace(
            mode,
            transient_fit=mode.transient_fit * factor,
            permanent_fit=mode.permanent_fit * factor,
        )
        for mode in modes
    ]


def mode_table(modes: List[FaultMode] = FAULT_MODES) -> Dict[str, Dict[str, float]]:
    """Table III as a printable dict (used by the benches)."""
    return {
        mode.scope.value: {
            "transient": mode.transient_fit,
            "permanent": mode.permanent_fit,
            "total": mode.total_fit,
        }
        for mode in modes
    }
