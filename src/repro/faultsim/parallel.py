"""Sharded, checkpointable Monte-Carlo engine.

Splits the module population into deterministic shards and runs them
through the generic campaign core (:mod:`repro.campaign`). Because every
module draws from its own seed stream (``derive_seed(seed, 0x51A7,
global_index)``) and the per-module fault counts come from one batched
Poisson draw (:func:`repro.faultsim.montecarlo.draw_fault_counts`), a
shard covering global indices ``[lo, hi)`` simulates exactly the modules
the sequential loop would have, and merging the shard results
(:meth:`ReliabilityResult.merge`) reproduces :func:`simulate`
**bit-for-bit** — worker count and shard count never change the science.

Robustness and observability (all supplied by the shared core):

- ``checkpoint_dir`` writes one fingerprint-verified JSON file per
  completed shard through the unified :class:`repro.campaign.ResultStore`;
  a killed run restarted with the same config loads verified checkpoints
  and only recomputes the missing (or corrupted / stale) shards.
- ``progress`` receives a :class:`ProgressStats` snapshot after every
  shard completes (modules/sec, ETA, failures so far, and — when a
  resume rejected checkpoints — why: corrupt vs. stale).

Worker-count resolution order: explicit argument > ``config.workers`` >
``REPRO_MC_WORKERS`` > the generic ``REPRO_WORKERS`` > 1 (in-process).

The engine (scalar reference loop vs. the vectorized fast path of
:mod:`repro.faultsim.fastpath`) is resolved once per run and recorded in
every shard's fingerprint; both engines are shard-invariant, and a
resume never mixes modes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.campaign import (
    Campaign,
    CampaignProgress,
    ProgressBase,
    fingerprint_digest,
    run_campaign,
)
from repro.campaign import resolve_workers as _resolve_workers
from repro.campaign.store import STORE_VERSION
from repro.faultsim import fastpath
from repro.faultsim.geometry import ModuleGeometry
from repro.faultsim.montecarlo import (
    FailureRecord,
    MonteCarloConfig,
    ReliabilityResult,
    build_result,
    draw_fault_counts,
    scheme_name,
    simulate_range,
)

#: Environment variable consulted when neither the call nor the config
#: pins a worker count (see the CLI's ``--workers``); the generic
#: ``REPRO_WORKERS`` is the next fallback.
WORKERS_ENV = "REPRO_MC_WORKERS"

#: Checkpoint schema version (the unified store's cell version).
CHECKPOINT_VERSION = STORE_VERSION

ProgressCallback = Callable[["ProgressStats"], None]


@dataclass(frozen=True)
class Shard:
    """One contiguous slice ``[lo, hi)`` of the module population."""

    index: int
    lo: int
    hi: int

    @property
    def n_modules(self) -> int:
        return self.hi - self.lo


@dataclass
class ProgressStats(ProgressBase):
    """Snapshot handed to the progress callback after each shard.

    A thin naming layer over :class:`repro.campaign.ProgressBase`: the
    rate/ETA/fraction accounting lives in the core, shared with every
    other campaign engine.
    """

    shards_done: int
    shards_total: int
    shards_from_checkpoint: int
    modules_done: int
    modules_total: int
    failures_so_far: int
    elapsed_s: float
    rejected_corrupt: int = 0
    rejected_stale: int = 0

    ITEM_NOUN = "shard"
    RATE_NOUN = "modules"

    items_done = property(lambda self: self.shards_done)
    items_total = property(lambda self: self.shards_total)
    items_from_store = property(lambda self: self.shards_from_checkpoint)
    units_done = property(lambda self: self.modules_done)
    units_total = property(lambda self: self.modules_total)
    modules_per_sec = property(lambda self: self.rate)

    def _trailer(self) -> str:
        return f"failures {self.failures_so_far}"


def resolve_workers(
    workers: Optional[int] = None,
    config: Optional[MonteCarloConfig] = None,
    strict: bool = False,
) -> int:
    """Explicit > config > ``REPRO_MC_WORKERS`` > ``REPRO_WORKERS`` > 1."""
    return _resolve_workers(
        workers,
        config.workers if config is not None else None,
        env=WORKERS_ENV,
        strict=strict,
    )


def plan_shards(n_modules: int, n_shards: int) -> List[Shard]:
    """Split ``[0, n_modules)`` into ``n_shards`` near-equal slices.

    Deterministic in its inputs (resume depends on the plan being
    reproducible); every module lands in exactly one shard.
    """
    if n_modules < 0:
        raise ValueError(f"n_modules must be >= 0, got {n_modules}")
    n_shards = max(1, min(n_shards, max(1, n_modules)))
    base, extra = divmod(n_modules, n_shards)
    shards: List[Shard] = []
    lo = 0
    for index in range(n_shards):
        hi = lo + base + (1 if index < extra else 0)
        shards.append(Shard(index=index, lo=lo, hi=hi))
        lo = hi
    return shards


@dataclass(frozen=True, eq=False)
class _ShardItem:
    """A shard plus its slice of the batched Poisson fault counts.

    The counts ride on the item (not the campaign) so a pool task ships
    only the modules it simulates, never the whole population's array.
    """

    shard: Shard
    counts: np.ndarray

    @property
    def index(self) -> int:
        return self.shard.index

    @property
    def key(self):
        return (self.shard.index, self.shard.lo, self.shard.hi)


class _FaultSimCampaign(Campaign):
    """Monte-Carlo reliability as a :class:`repro.campaign.Campaign`.

    Checkpoint directories keep their historical contract — exactly one
    ``shard-NNNNN.json`` per shard and nothing else — so the store's
    index is disabled; checkpoints are per-run scratch, not a shared
    result cache. ``shared_store=True`` (a store *object* was supplied,
    e.g. a networked :class:`repro.campaign.RemoteResultStore`) flips
    both decisions: cells get digest-based names so different runs'
    shards can coexist in one shared namespace, and completions are
    indexed so ``campaign-status`` sees the family.
    """

    name = "faultsim"
    index_results = False

    def __init__(
        self,
        evaluator,
        geometry: ModuleGeometry,
        config: MonteCarloConfig,
        engine: str,
        base_fingerprint: dict,
        shared_store: bool = False,
    ):
        self.evaluator = evaluator
        self.geometry = geometry
        self.config = config
        self.engine = engine
        self.base_fingerprint = base_fingerprint
        self.shared_store = shared_store
        if shared_store:
            self.index_results = True

    def fingerprint(self, item: _ShardItem) -> dict:
        shard = item.shard
        return {
            **self.base_fingerprint,
            "shard": {"index": shard.index, "lo": shard.lo, "hi": shard.hi},
        }

    def cell_name(self, item: _ShardItem, fingerprint: dict) -> str:
        if self.shared_store:
            return f"faultsim-{fingerprint_digest(fingerprint)}.json"
        return f"shard-{item.index:05d}.json"

    def run_item(self, item: _ShardItem) -> List[FailureRecord]:
        # ``engine`` was resolved once by the coordinator and travels
        # with the campaign, so worker processes never re-consult
        # mutable process state (``REPRO_FAULTSIM`` / ``set_engine``).
        simulate_fn = (
            fastpath.simulate_range_fast
            if self.engine == "fast"
            else simulate_range
        )
        return simulate_fn(
            self.evaluator,
            self.geometry,
            self.config,
            item.counts,
            item.shard.lo,
            item.shard.hi,
        )

    def serialize_result(self, item, records: Sequence[FailureRecord]):
        return [record.to_json() for record in records]

    def deserialize_result(self, item, payload) -> List[FailureRecord]:
        return [FailureRecord.from_json(entry) for entry in payload]

    def item_units(self, item: _ShardItem) -> int:
        return item.shard.n_modules

    def result_failures(self, records) -> int:
        return len(records)


def simulate_parallel(
    evaluator,
    geometry: ModuleGeometry,
    config: Optional[MonteCarloConfig] = None,
    *,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    store=None,
    progress: Optional[ProgressCallback] = None,
) -> ReliabilityResult:
    """Sharded equivalent of :func:`simulate`; identical output.

    Keyword overrides take precedence over the corresponding
    ``MonteCarloConfig`` fields. With ``workers == 1`` the shards run
    in-process (no pool), which still exercises checkpointing and
    progress reporting. ``store`` accepts a ready store object (e.g. a
    networked :class:`repro.campaign.RemoteResultStore`); it takes
    precedence over ``checkpoint_dir`` and switches the campaign to
    digest-based cell names so shards from different runs share one
    namespace safely.
    """
    config = config or MonteCarloConfig()
    workers = resolve_workers(workers, config)
    if shards is None:
        shards = config.shards
    if shards is None:
        # A few shards per worker keeps the pool busy through stragglers
        # and gives checkpoint/progress useful granularity.
        shards = workers * 4 if workers > 1 else 1
    if checkpoint_dir is None:
        checkpoint_dir = config.checkpoint_dir

    scheme = scheme_name(evaluator)
    engine = config.resolved_engine()
    fingerprint = config.science_fingerprint(scheme, geometry)
    plan = plan_shards(config.n_modules, shards)
    fault_counts = draw_fault_counts(config, geometry)

    campaign = _FaultSimCampaign(
        evaluator,
        geometry,
        config,
        engine,
        fingerprint,
        shared_store=store is not None,
    )
    items = [
        _ShardItem(shard, fault_counts[shard.lo : shard.hi]) for shard in plan
    ]

    def translate(snap: CampaignProgress) -> None:
        progress(
            ProgressStats(
                shards_done=snap.items_done,
                shards_total=snap.items_total,
                shards_from_checkpoint=snap.items_from_store,
                modules_done=snap.units_done,
                modules_total=snap.units_total,
                failures_so_far=snap.failures,
                elapsed_s=snap.elapsed_s,
                rejected_corrupt=snap.rejected_corrupt,
                rejected_stale=snap.rejected_stale,
            )
        )

    shard_records = run_campaign(
        campaign,
        items,
        workers=workers,
        store_dir=checkpoint_dir,
        store=store,
        progress=translate if progress is not None else None,
    )

    parts = [
        build_result(scheme, config, shard_records[s.index], n_modules=s.n_modules)
        for s in plan
    ]
    merged = ReliabilityResult.merge(parts)
    # plan_shards covers the population exactly, so the pooled count is
    # the configured one; assert the invariant cheaply.
    assert merged.n_modules == config.n_modules
    return merged
