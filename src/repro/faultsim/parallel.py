"""Sharded, checkpointable Monte-Carlo engine.

Splits the module population into deterministic shards and runs them
across a :class:`concurrent.futures.ProcessPoolExecutor`. Because every
module draws from its own seed stream (``derive_seed(seed, 0x51A7,
global_index)``) and the per-module fault counts come from one batched
Poisson draw (:func:`repro.faultsim.montecarlo.draw_fault_counts`), a
shard covering global indices ``[lo, hi)`` simulates exactly the modules
the sequential loop would have, and merging the shard results
(:meth:`ReliabilityResult.merge`) reproduces :func:`simulate`
**bit-for-bit** — worker count and shard count never change the science.

Robustness and observability:

- ``checkpoint_dir`` writes one JSON file per completed shard; a killed
  run restarted with the same config loads verified checkpoints and only
  recomputes the missing (or corrupted / mismatching) shards.
- ``progress`` receives a :class:`ProgressStats` snapshot after every
  shard completes (modules/sec, ETA, failures so far).

Worker-count resolution order: explicit argument > ``config.workers`` >
``REPRO_MC_WORKERS`` environment variable > 1 (in-process, no pool).

The engine (scalar reference loop vs. the vectorized fast path of
:mod:`repro.faultsim.fastpath`) is resolved once per run and handed to
every shard; both engines are shard-invariant, and the checkpoint
fingerprint records the engine so a resume never mixes modes.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.faultsim import fastpath
from repro.faultsim.geometry import ModuleGeometry
from repro.faultsim.montecarlo import (
    FailureRecord,
    MonteCarloConfig,
    ReliabilityResult,
    build_result,
    draw_fault_counts,
    scheme_name,
    simulate_range,
)

#: Environment variable consulted when neither the call nor the config
#: pins a worker count (see the CLI's ``--workers``).
WORKERS_ENV = "REPRO_MC_WORKERS"

#: Checkpoint schema version; bumped if the payload layout changes.
CHECKPOINT_VERSION = 1

ProgressCallback = Callable[["ProgressStats"], None]


@dataclass(frozen=True)
class Shard:
    """One contiguous slice ``[lo, hi)`` of the module population."""

    index: int
    lo: int
    hi: int

    @property
    def n_modules(self) -> int:
        return self.hi - self.lo


@dataclass
class ProgressStats:
    """Snapshot handed to the progress callback after each shard."""

    shards_done: int
    shards_total: int
    shards_from_checkpoint: int
    modules_done: int
    modules_total: int
    failures_so_far: int
    elapsed_s: float

    @property
    def modules_per_sec(self) -> float:
        return self.modules_done / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def eta_s(self) -> float:
        """Estimated seconds until completion (0 when done or unknown)."""
        rate = self.modules_per_sec
        remaining = self.modules_total - self.modules_done
        return remaining / rate if rate > 0 and remaining > 0 else 0.0

    @property
    def fraction_done(self) -> float:
        return self.modules_done / self.modules_total if self.modules_total else 1.0

    def describe(self) -> str:
        """One-line human summary (used by CLI/script progress printers)."""
        return (
            f"shard {self.shards_done}/{self.shards_total} "
            f"({self.fraction_done:.0%}) "
            f"{self.modules_per_sec:,.0f} modules/s "
            f"eta {self.eta_s:.0f}s "
            f"failures {self.failures_so_far}"
        )


def resolve_workers(
    workers: Optional[int] = None, config: Optional[MonteCarloConfig] = None
) -> int:
    """Explicit argument > config > ``REPRO_MC_WORKERS`` env > 1."""
    if workers is None and config is not None:
        workers = config.workers
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if env:
            workers = int(env)
    workers = 1 if workers is None else int(workers)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def plan_shards(n_modules: int, n_shards: int) -> List[Shard]:
    """Split ``[0, n_modules)`` into ``n_shards`` near-equal slices.

    Deterministic in its inputs (resume depends on the plan being
    reproducible); every module lands in exactly one shard.
    """
    if n_modules < 0:
        raise ValueError(f"n_modules must be >= 0, got {n_modules}")
    n_shards = max(1, min(n_shards, max(1, n_modules)))
    base, extra = divmod(n_modules, n_shards)
    shards: List[Shard] = []
    lo = 0
    for index in range(n_shards):
        hi = lo + base + (1 if index < extra else 0)
        shards.append(Shard(index=index, lo=lo, hi=hi))
        lo = hi
    return shards


def _checkpoint_path(checkpoint_dir: str, shard: Shard) -> str:
    return os.path.join(checkpoint_dir, f"shard-{shard.index:05d}.json")


def _write_checkpoint(
    checkpoint_dir: str,
    shard: Shard,
    fingerprint: dict,
    records: Sequence[FailureRecord],
) -> None:
    """Atomically persist one shard's failure records."""
    os.makedirs(checkpoint_dir, exist_ok=True)
    payload = {
        "version": CHECKPOINT_VERSION,
        "shard": {"index": shard.index, "lo": shard.lo, "hi": shard.hi},
        "fingerprint": fingerprint,
        "records": [r.to_json() for r in records],
    }
    path = _checkpoint_path(checkpoint_dir, shard)
    fd, tmp_path = tempfile.mkstemp(
        dir=checkpoint_dir, prefix=f".shard-{shard.index:05d}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def _load_checkpoint(
    checkpoint_dir: str, shard: Shard, fingerprint: dict
) -> Optional[List[FailureRecord]]:
    """Load one shard's records; None if absent, corrupted, or stale.

    Any failure to parse/verify falls back to recomputing the shard —
    a truncated file from a killed run must never poison a resume.
    """
    path = _checkpoint_path(checkpoint_dir, shard)
    try:
        with open(path) as handle:
            payload = json.load(handle)
        if payload["version"] != CHECKPOINT_VERSION:
            return None
        if payload["fingerprint"] != fingerprint:
            return None
        if payload["shard"] != {"index": shard.index, "lo": shard.lo, "hi": shard.hi}:
            return None
        return [FailureRecord.from_json(item) for item in payload["records"]]
    except (OSError, ValueError, KeyError, TypeError):
        return None


def _run_shard(
    evaluator,
    geometry: ModuleGeometry,
    config: MonteCarloConfig,
    shard: Shard,
    fault_counts: np.ndarray,
    engine: str = "reference",
) -> Tuple[int, List[FailureRecord]]:
    """Worker entry point (module-level so it pickles).

    ``engine`` is resolved once by the coordinator and passed explicitly
    so worker processes never re-consult mutable process state
    (``REPRO_FAULTSIM`` / ``set_engine``) — every shard of one run uses
    one engine. Both engines are shard-invariant, so the merged result
    equals the corresponding sequential run.
    """
    simulate_fn = (
        fastpath.simulate_range_fast if engine == "fast" else simulate_range
    )
    records = simulate_fn(
        evaluator, geometry, config, fault_counts, shard.lo, shard.hi
    )
    return shard.index, records


def simulate_parallel(
    evaluator,
    geometry: ModuleGeometry,
    config: Optional[MonteCarloConfig] = None,
    *,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    progress: Optional[ProgressCallback] = None,
) -> ReliabilityResult:
    """Sharded equivalent of :func:`simulate`; identical output.

    Keyword overrides take precedence over the corresponding
    ``MonteCarloConfig`` fields. With ``workers == 1`` the shards run
    in-process (no pool), which still exercises checkpointing and
    progress reporting.
    """
    config = config or MonteCarloConfig()
    workers = resolve_workers(workers, config)
    if shards is None:
        shards = config.shards
    if shards is None:
        # A few shards per worker keeps the pool busy through stragglers
        # and gives checkpoint/progress useful granularity.
        shards = workers * 4 if workers > 1 else 1
    if checkpoint_dir is None:
        checkpoint_dir = config.checkpoint_dir

    scheme = scheme_name(evaluator)
    engine = config.resolved_engine()
    fingerprint = config.science_fingerprint(scheme, geometry)
    plan = plan_shards(config.n_modules, shards)
    fault_counts = draw_fault_counts(config, geometry)

    shard_records: Dict[int, List[FailureRecord]] = {}
    started = time.monotonic()
    from_checkpoint = 0

    def report() -> None:
        if progress is None:
            return
        done = [plan[i] for i in shard_records]
        progress(
            ProgressStats(
                shards_done=len(shard_records),
                shards_total=len(plan),
                shards_from_checkpoint=from_checkpoint,
                modules_done=sum(s.n_modules for s in done),
                modules_total=config.n_modules,
                failures_so_far=sum(len(r) for r in shard_records.values()),
                elapsed_s=time.monotonic() - started,
            )
        )

    pending: List[Shard] = []
    for shard in plan:
        cached = (
            _load_checkpoint(checkpoint_dir, shard, fingerprint)
            if checkpoint_dir
            else None
        )
        if cached is not None:
            shard_records[shard.index] = cached
            from_checkpoint += 1
            report()
        else:
            pending.append(shard)

    def finish(shard: Shard, records: List[FailureRecord]) -> None:
        shard_records[shard.index] = records
        if checkpoint_dir:
            _write_checkpoint(checkpoint_dir, shard, fingerprint, records)
        report()

    if workers == 1:
        for shard in pending:
            _, records = _run_shard(
                evaluator,
                geometry,
                config,
                shard,
                fault_counts[shard.lo : shard.hi],
                engine,
            )
            finish(shard, records)
    elif pending:
        with ProcessPoolExecutor(max_workers=min(workers, len(pending))) as pool:
            futures = {
                pool.submit(
                    _run_shard,
                    evaluator,
                    geometry,
                    config,
                    shard,
                    fault_counts[shard.lo : shard.hi],
                    engine,
                ): shard
                for shard in pending
            }
            outstanding = set(futures)
            while outstanding:
                completed, outstanding = wait(
                    outstanding, return_when=FIRST_COMPLETED
                )
                for future in completed:
                    _, records = future.result()
                    finish(futures[future], records)

    parts = [
        build_result(scheme, config, shard_records[s.index], n_modules=s.n_modules)
        for s in plan
    ]
    merged = ReliabilityResult.merge(parts)
    # plan_shards covers the population exactly, so the pooled count is
    # the configured one; assert the invariant cheaply.
    assert merged.n_modules == config.n_modules
    return merged
