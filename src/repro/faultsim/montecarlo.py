"""Monte-Carlo driver producing probability-of-system-failure curves.

Reproduces the paper's Section III-B methodology: N module instances are
simulated for a 7-year lifetime; faults arrive per chip as a Poisson
process with the Table III FIT rates; each arrival is placed uniformly in
the module geometry and classified by the scheme's evaluator against the
faults already present; the module's *failure time* is the first DUE or
SDC. The output is the fraction of failed modules versus time.

The paper simulates 10M devices; that is feasible here too (the
simulation is event-driven and ~93% of modules draw zero faults) but the
default is 200K modules, which already gives tight confidence intervals
for the probabilities involved. Pass ``n_modules`` to scale up, and see
:mod:`repro.faultsim.parallel` for the sharded multi-process engine that
produces bit-identical results on many cores.

Determinism contract (relied on by the parallel engine):

- per-module fault *counts* come from one batched Poisson draw seeded
  with ``derive_seed(seed, 0xFA017)`` — :func:`draw_fault_counts`;
- each busy module's faults are generated from its own
  ``random.Random(derive_seed(seed, 0x51A7, module_index))`` stream.

A shard covering global module indices ``[lo, hi)`` therefore reproduces
exactly the modules the sequential loop would have simulated, and merging
shard results (:meth:`ReliabilityResult.merge`) reconstructs the
sequential output bit-for-bit.

The scalar loop here is the *reference* engine (and the default); the
vectorized fast engine in :mod:`repro.faultsim.fastpath` — selected per
config or via ``REPRO_FAULTSIM=fast`` — classifies single-fault modules
with derived outcome tables and falls back to this loop for multi-fault
modules.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.faultsim.evaluators import Outcome
from repro.faultsim.faults import FaultInstance, place_fault
from repro.faultsim.fit import FAULT_MODES, FaultMode
from repro.faultsim.geometry import ModuleGeometry
from repro.utils import units
from repro.utils.rng import derive_seed


@dataclass
class MonteCarloConfig:
    """Knobs for one reliability run."""

    n_modules: int = 200_000
    years: float = 7.0
    seed: int = 0
    fit_multiplier: float = 1.0
    #: Optional scrub interval: correctable *transient* faults older than
    #: this are dropped before each classification (FaultSim's scrubbing
    #: model). None disables scrubbing (conservative).
    scrub_interval_hours: Optional[float] = None
    #: Fault modes; defaults to Table III.
    modes: Sequence[FaultMode] = field(default_factory=lambda: list(FAULT_MODES))
    #: Evaluation grid resolution in months.
    grid_months: int = 6
    #: Worker processes for :func:`repro.faultsim.parallel.simulate_parallel`.
    #: None defers to the ``REPRO_MC_WORKERS`` environment variable (and
    #: finally to 1 = in-process). Never changes the science output.
    workers: Optional[int] = None
    #: Shard count for the parallel engine; None picks a multiple of the
    #: worker count. Never changes the science output.
    shards: Optional[int] = None
    #: Directory for per-shard checkpoint files; None disables
    #: checkpointing. A re-run with the same config resumes, skipping
    #: shards whose checkpoints verify.
    checkpoint_dir: Optional[str] = None
    #: Monte-Carlo engine: ``"reference"`` (the scalar loop, bit-identical
    #: to PR 1) or ``"fast"`` (the vectorized single-fault path of
    #: :mod:`repro.faultsim.fastpath`). None defers to
    #: ``fastpath.set_engine`` / the ``REPRO_FAULTSIM`` environment
    #: variable, and finally to ``"reference"``. Unlike workers/shards
    #: this *does* change the science output (statistically equivalent,
    #: not bit-identical), so it is part of the fingerprint.
    engine: Optional[str] = None

    def resolved_engine(self) -> str:
        """The engine this config runs under (config > env > reference)."""
        from repro.faultsim import fastpath

        return fastpath.resolve_engine(self.engine)

    def science_fingerprint(self, scheme: str, geometry: ModuleGeometry) -> dict:
        """The output-determining knobs, as a JSON-friendly dict.

        Used to validate checkpoints: two runs with equal fingerprints
        produce identical results no matter how they are sharded. The
        resolved engine is included so a checkpoint written by one engine
        can never be resumed by the other.
        """
        return {
            "scheme": scheme,
            "geometry": geometry.name,
            "engine": self.resolved_engine(),
            "n_modules": self.n_modules,
            "years": self.years,
            "seed": self.seed,
            "fit_multiplier": self.fit_multiplier,
            "scrub_interval_hours": self.scrub_interval_hours,
            "grid_months": self.grid_months,
            "modes": [
                [m.scope.value, m.transient_fit, m.permanent_fit]
                for m in self.modes
            ],
        }


@dataclass(frozen=True)
class FailureRecord:
    """One module's first failure, reduced to what the statistics need.

    Small and JSON-serializable so shard checkpoints stay lightweight.
    """

    time_hours: float
    outcome: Outcome
    scope: str  #: ``Scope.value`` of the triggering fault

    def to_json(self) -> list:
        return [self.time_hours, self.outcome.value, self.scope]

    @staticmethod
    def from_json(payload: Sequence) -> "FailureRecord":
        time_hours, outcome, scope = payload
        return FailureRecord(float(time_hours), Outcome(outcome), str(scope))


@dataclass
class ReliabilityResult:
    """Failure statistics for one scheme."""

    scheme: str
    n_modules: int
    years: float
    grid_hours: List[float]
    fail_probability: List[float]  #: P(failed by grid point)
    n_failed: int
    n_due: int
    n_sdc: int
    failures_by_scope: Dict[str, int]
    #: Sorted first-failure times (hours). Carried so that shard results
    #: merge exactly: the merged curve is recomputed from the pooled
    #: times, not averaged from per-shard curves.
    fail_times: List[float] = field(default_factory=list)

    @property
    def final_fail_probability(self) -> float:
        return self.fail_probability[-1] if self.fail_probability else 0.0

    def confidence_interval(self, z: float = 1.96) -> "Tuple[float, float]":
        """Wilson score interval for the final failure probability.

        The paper runs 10M devices; at the default 200K the interval
        quantifies how much of any scheme-to-scheme difference is noise.
        """
        n = self.n_modules
        if n == 0:
            return (0.0, 0.0)
        p = self.final_fail_probability
        denom = 1.0 + z * z / n
        centre = (p + z * z / (2 * n)) / denom
        margin = (z / denom) * ((p * (1 - p) / n + z * z / (4 * n * n)) ** 0.5)
        return (max(0.0, centre - margin), min(1.0, centre + margin))

    def differs_significantly_from(self, other: "ReliabilityResult") -> bool:
        """True when the two final probabilities' 95% intervals disjoint."""
        low_a, high_a = self.confidence_interval()
        low_b, high_b = other.confidence_interval()
        return high_a < low_b or high_b < low_a

    def probability_at_years(self, years: float) -> float:
        """Interpolated failure probability at a point in time.

        Linear interpolation between the evaluation-grid points, with the
        implicit origin (0, 0) before the first point; clamped to the
        final probability past the end of the grid and to 0 before t=0.
        """
        if not self.grid_hours:
            return 0.0
        hours = years * units.HOURS_PER_YEAR
        if hours <= 0.0:
            return 0.0
        if hours >= self.grid_hours[-1]:
            return self.fail_probability[-1]
        index = bisect.bisect_right(self.grid_hours, hours)
        if index == 0:
            t_left, p_left = 0.0, 0.0
        else:
            t_left = self.grid_hours[index - 1]
            p_left = self.fail_probability[index - 1]
            if hours == t_left:  # exactly on a grid point: its value
                return p_left
        t_right = self.grid_hours[index]
        p_right = self.fail_probability[index]
        fraction = (hours - t_left) / (t_right - t_left)
        return p_left + fraction * (p_right - p_left)

    @classmethod
    def merge(cls, parts: Sequence["ReliabilityResult"]) -> "ReliabilityResult":
        """Pool shard results into one, bit-identical to a sequential run.

        The failure-probability curve is recomputed from the pooled
        failure times over the pooled module count — exactly the
        computation :func:`simulate` performs — so merging is associative
        and order-independent, and the Wilson interval of the merged
        result is the pooled-n interval. All parts must describe the same
        scheme, lifetime, and evaluation grid.
        """
        if not parts:
            raise ValueError("cannot merge zero ReliabilityResult shards")
        head = parts[0]
        for part in parts[1:]:
            if part.scheme != head.scheme:
                raise ValueError(
                    f"scheme mismatch: {part.scheme!r} != {head.scheme!r}"
                )
            if part.years != head.years or part.grid_hours != head.grid_hours:
                raise ValueError("evaluation grid mismatch between shards")
        n_modules = sum(p.n_modules for p in parts)
        fail_times = sorted(t for p in parts for t in p.fail_times)
        by_scope: Dict[str, int] = {}
        for part in parts:
            for scope, count in part.failures_by_scope.items():
                by_scope[scope] = by_scope.get(scope, 0) + count
        fail_probability = [
            bisect.bisect_right(fail_times, t) / n_modules
            for t in head.grid_hours
        ]
        return cls(
            scheme=head.scheme,
            n_modules=n_modules,
            years=head.years,
            grid_hours=list(head.grid_hours),
            fail_probability=fail_probability,
            n_failed=sum(p.n_failed for p in parts),
            n_due=sum(p.n_due for p in parts),
            n_sdc=sum(p.n_sdc for p in parts),
            failures_by_scope=by_scope,
            fail_times=fail_times,
        )


def merge_results(parts: Sequence[ReliabilityResult]) -> ReliabilityResult:
    """Module-level alias for :meth:`ReliabilityResult.merge`."""
    return ReliabilityResult.merge(parts)


def draw_fault_counts(
    config: MonteCarloConfig, geometry: ModuleGeometry
) -> np.ndarray:
    """The single batched Poisson draw of per-module fault counts.

    One array for the whole population, seeded independently of the
    per-module streams; shards slice it by global module index so any
    sharding reproduces the sequential counts exactly.
    """
    total_hours = config.years * units.HOURS_PER_YEAR
    # Per-chip arrival rate across all modes (events per hour).
    lam_chip = (
        sum(m.total_fit for m in config.modes)
        * config.fit_multiplier
        / units.FIT_HOURS
    )
    lam_module = lam_chip * geometry.total_chips * total_hours
    np_rng = np.random.default_rng(derive_seed(config.seed, 0xFA017))
    return np_rng.poisson(lam_module, config.n_modules)


def _mode_categories(
    config: MonteCarloConfig,
) -> Tuple[List[Tuple[FaultMode, bool]], np.ndarray]:
    """Categorical distribution over (mode, transient) pairs."""
    categories: List[Tuple[FaultMode, bool]] = []
    weights: List[float] = []
    for mode in config.modes:
        if mode.transient_fit > 0:
            categories.append((mode, True))
            weights.append(mode.transient_fit)
        if mode.permanent_fit > 0:
            categories.append((mode, False))
            weights.append(mode.permanent_fit)
    cumulative = np.cumsum(np.asarray(weights, dtype=float))
    cumulative /= cumulative[-1]
    return categories, cumulative


def _simulate_module(
    evaluator,
    geometry: ModuleGeometry,
    config: MonteCarloConfig,
    module_index: int,
    n_faults: int,
    categories: List[Tuple[FaultMode, bool]],
    cumulative: np.ndarray,
    total_hours: float,
) -> Optional[FailureRecord]:
    """One busy module's scalar fault loop; its first failure or None.

    The reference engine's inner body, shared verbatim by the fast
    engine's multi-fault fallback so the two stay bit-identical there.
    The RNG consumption order (times, then per-arrival mode/chip/
    placement) is part of the determinism contract — do not reorder.
    """
    rng = random.Random(derive_seed(config.seed, 0x51A7, module_index))
    times = sorted(rng.uniform(0.0, total_hours) for _ in range(n_faults))
    active: List[FaultInstance] = []
    scrub = config.scrub_interval_hours
    # Earliest arrival among active *transient* faults (arrivals append in
    # time order, so the front transient is the oldest): the scrub filter
    # is a no-op until that one expires, so rebuild the list only then
    # instead of re-filtering on every arrival.
    oldest_transient: Optional[float] = None
    for time_hours in times:
        mode, transient = categories[bisect.bisect_left(cumulative, rng.random())]
        chip = rng.randrange(geometry.chips_per_rank)
        fault = place_fault(mode.scope, transient, time_hours, chip, geometry, rng)
        if (
            scrub is not None
            and oldest_transient is not None
            and time_hours - oldest_transient >= scrub
        ):
            active = [
                f
                for f in active
                if not f.transient or time_hours - f.time_hours < scrub
            ]
            oldest_transient = min(
                (f.time_hours for f in active if f.transient), default=None
            )
        outcome = evaluator.classify(active, fault)
        if outcome.is_failure:
            return FailureRecord(time_hours, outcome, fault.scope.value)
        active.append(fault)
        if transient and oldest_transient is None:
            oldest_transient = time_hours
    return None


def simulate_range(
    evaluator,
    geometry: ModuleGeometry,
    config: MonteCarloConfig,
    fault_counts: np.ndarray,
    lo: int = 0,
    hi: Optional[int] = None,
) -> List[FailureRecord]:
    """Simulate modules with global indices ``[lo, hi)``.

    ``fault_counts`` is the slice ``draw_fault_counts(...)[lo:hi]`` (or
    the full array when simulating everything). Each module is seeded
    from its *global* index, so the union of any disjoint ranges covering
    ``[0, n_modules)`` equals the sequential run.
    """
    if hi is None:
        hi = lo + len(fault_counts)
    if hi - lo != len(fault_counts):
        raise ValueError(
            f"fault_counts has {len(fault_counts)} entries for range [{lo}, {hi})"
        )
    total_hours = config.years * units.HOURS_PER_YEAR
    categories, cumulative = _mode_categories(config)

    records: List[FailureRecord] = []
    busy_modules = np.nonzero(fault_counts)[0]
    for local_index in busy_modules:
        record = _simulate_module(
            evaluator,
            geometry,
            config,
            lo + int(local_index),
            int(fault_counts[local_index]),
            categories,
            cumulative,
            total_hours,
        )
        if record is not None:
            records.append(record)
    return records


def build_result(
    scheme: str,
    config: MonteCarloConfig,
    records: Sequence[FailureRecord],
    n_modules: Optional[int] = None,
) -> ReliabilityResult:
    """Fold failure records into a :class:`ReliabilityResult`.

    ``n_modules`` defaults to ``config.n_modules``; shard results pass
    their own population slice size so that merging re-weights exactly.
    """
    n_modules = config.n_modules if n_modules is None else n_modules
    total_hours = config.years * units.HOURS_PER_YEAR
    n_points = max(1, int(config.years * 12 / config.grid_months))
    grid_hours = [(i + 1) * total_hours / n_points for i in range(n_points)]
    fail_times = sorted(r.time_hours for r in records)
    fail_probability = [
        bisect.bisect_right(fail_times, t) / n_modules for t in grid_hours
    ]

    by_scope: Dict[str, int] = {}
    n_due = n_sdc = 0
    for record in records:
        by_scope[record.scope] = by_scope.get(record.scope, 0) + 1
        if record.outcome is Outcome.DUE:
            n_due += 1
        else:
            n_sdc += 1

    return ReliabilityResult(
        scheme=scheme,
        n_modules=n_modules,
        years=config.years,
        grid_hours=grid_hours,
        fail_probability=fail_probability,
        n_failed=len(records),
        n_due=n_due,
        n_sdc=n_sdc,
        failures_by_scope=by_scope,
        fail_times=fail_times,
    )


def scheme_name(evaluator) -> str:
    """The display name the results carry for one evaluator."""
    return getattr(evaluator, "name", type(evaluator).__name__)


def simulate(
    evaluator,
    geometry: ModuleGeometry,
    config: Optional[MonteCarloConfig] = None,
) -> ReliabilityResult:
    """Run the Monte-Carlo reliability simulation for one scheme.

    Dispatches to the scalar reference loop or the vectorized fast
    engine according to ``config.engine`` / ``REPRO_FAULTSIM`` (see
    :mod:`repro.faultsim.fastpath`). Both engines draw the module
    population from the same batched Poisson stream.
    """
    from repro.faultsim import fastpath

    config = config or MonteCarloConfig()
    fault_counts = draw_fault_counts(config, geometry)
    if config.resolved_engine() == "fast":
        records = fastpath.simulate_range_fast(
            evaluator, geometry, config, fault_counts
        )
    else:
        records = simulate_range(evaluator, geometry, config, fault_counts)
    return build_result(scheme_name(evaluator), config, records)
