"""Monte-Carlo driver producing probability-of-system-failure curves.

Reproduces the paper's Section III-B methodology: N module instances are
simulated for a 7-year lifetime; faults arrive per chip as a Poisson
process with the Table III FIT rates; each arrival is placed uniformly in
the module geometry and classified by the scheme's evaluator against the
faults already present; the module's *failure time* is the first DUE or
SDC. The output is the fraction of failed modules versus time.

The paper simulates 10M devices; that is feasible here too (the
simulation is event-driven and ~93% of modules draw zero faults) but the
default is 200K modules, which already gives tight confidence intervals
for the probabilities involved. Pass ``n_modules`` to scale up.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.faultsim.evaluators import Outcome
from repro.faultsim.faults import FaultInstance, place_fault
from repro.faultsim.fit import FAULT_MODES, FaultMode
from repro.faultsim.geometry import ModuleGeometry
from repro.utils import units
from repro.utils.rng import derive_seed


@dataclass
class MonteCarloConfig:
    """Knobs for one reliability run."""

    n_modules: int = 200_000
    years: float = 7.0
    seed: int = 0
    fit_multiplier: float = 1.0
    #: Optional scrub interval: correctable *transient* faults older than
    #: this are dropped before each classification (FaultSim's scrubbing
    #: model). None disables scrubbing (conservative).
    scrub_interval_hours: Optional[float] = None
    #: Fault modes; defaults to Table III.
    modes: Sequence[FaultMode] = field(default_factory=lambda: list(FAULT_MODES))
    #: Evaluation grid resolution in months.
    grid_months: int = 6


@dataclass
class ReliabilityResult:
    """Failure statistics for one scheme."""

    scheme: str
    n_modules: int
    years: float
    grid_hours: List[float]
    fail_probability: List[float]  #: P(failed by grid point)
    n_failed: int
    n_due: int
    n_sdc: int
    failures_by_scope: Dict[str, int]

    @property
    def final_fail_probability(self) -> float:
        return self.fail_probability[-1] if self.fail_probability else 0.0

    def confidence_interval(self, z: float = 1.96) -> "Tuple[float, float]":
        """Wilson score interval for the final failure probability.

        The paper runs 10M devices; at the default 200K the interval
        quantifies how much of any scheme-to-scheme difference is noise.
        """
        n = self.n_modules
        if n == 0:
            return (0.0, 0.0)
        p = self.final_fail_probability
        denom = 1.0 + z * z / n
        centre = (p + z * z / (2 * n)) / denom
        margin = (z / denom) * ((p * (1 - p) / n + z * z / (4 * n * n)) ** 0.5)
        return (max(0.0, centre - margin), min(1.0, centre + margin))

    def differs_significantly_from(self, other: "ReliabilityResult") -> bool:
        """True when the two final probabilities' 95% intervals disjoint."""
        low_a, high_a = self.confidence_interval()
        low_b, high_b = other.confidence_interval()
        return high_a < low_b or high_b < low_a

    def probability_at_years(self, years: float) -> float:
        """Interpolated failure probability at a point in time."""
        hours = years * units.HOURS_PER_YEAR
        index = bisect.bisect_right(self.grid_hours, hours) - 1
        if index < 0:
            return 0.0
        return self.fail_probability[min(index, len(self.fail_probability) - 1)]


def simulate(
    evaluator, geometry: ModuleGeometry, config: MonteCarloConfig = None
) -> ReliabilityResult:
    """Run the Monte-Carlo reliability simulation for one scheme."""
    config = config or MonteCarloConfig()
    total_hours = config.years * units.HOURS_PER_YEAR
    # Per-chip arrival rate across all modes (events per hour).
    lam_chip = (
        sum(m.total_fit for m in config.modes)
        * config.fit_multiplier
        / units.FIT_HOURS
    )
    lam_module = lam_chip * geometry.total_chips * total_hours

    # Categorical distribution over (mode, transient) pairs.
    categories: List[Tuple[FaultMode, bool]] = []
    weights: List[float] = []
    for mode in config.modes:
        if mode.transient_fit > 0:
            categories.append((mode, True))
            weights.append(mode.transient_fit)
        if mode.permanent_fit > 0:
            categories.append((mode, False))
            weights.append(mode.permanent_fit)
    cumulative = np.cumsum(np.asarray(weights, dtype=float))
    cumulative /= cumulative[-1]

    np_rng = np.random.default_rng(derive_seed(config.seed, 0xFA017))
    fault_counts = np_rng.poisson(lam_module, config.n_modules)

    first_failures: List[Tuple[float, Outcome, FaultInstance]] = []
    busy_modules = np.nonzero(fault_counts)[0]
    for module_index in busy_modules:
        rng = random.Random(derive_seed(config.seed, 0x51A7, int(module_index)))
        n_faults = int(fault_counts[module_index])
        times = sorted(rng.uniform(0.0, total_hours) for _ in range(n_faults))
        active: List[FaultInstance] = []
        for time_hours in times:
            mode, transient = categories[
                bisect.bisect_left(cumulative, rng.random())
            ]
            chip = rng.randrange(geometry.chips_per_rank)
            fault = place_fault(
                mode.scope, transient, time_hours, chip, geometry, rng
            )
            if config.scrub_interval_hours is not None:
                active = [
                    f
                    for f in active
                    if not f.transient
                    or time_hours - f.time_hours < config.scrub_interval_hours
                ]
            outcome = evaluator.classify(active, fault)
            if outcome.is_failure:
                first_failures.append((time_hours, outcome, fault))
                break
            active.append(fault)

    # Build the failure-probability curve.
    n_points = max(1, int(config.years * 12 / config.grid_months))
    grid_hours = [
        (i + 1) * total_hours / n_points for i in range(n_points)
    ]
    fail_times = sorted(t for t, _, _ in first_failures)
    fail_probability = [
        bisect.bisect_right(fail_times, t) / config.n_modules for t in grid_hours
    ]

    by_scope: Dict[str, int] = {}
    n_due = n_sdc = 0
    for _, outcome, fault in first_failures:
        by_scope[fault.scope.value] = by_scope.get(fault.scope.value, 0) + 1
        if outcome is Outcome.DUE:
            n_due += 1
        else:
            n_sdc += 1

    return ReliabilityResult(
        scheme=getattr(evaluator, "name", type(evaluator).__name__),
        n_modules=config.n_modules,
        years=config.years,
        grid_hours=grid_hours,
        fail_probability=fail_probability,
        n_failed=len(first_failures),
        n_due=n_due,
        n_sdc=n_sdc,
        failures_by_scope=by_scope,
    )
