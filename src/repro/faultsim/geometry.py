"""Module geometry for the two evaluated configurations (Section III-B).

- x8 SECDED: single-channel 16GB module, 2 ranks of 9 x8 chips (8 data +
  1 ECC). Each 8Gb chip: 16 banks x 65536 rows x 1024 column addresses x
  8 bits.
- x4 Chipkill: single-channel 16GB module, 2 ranks of 18 x4 chips (16
  data + 2 ECC). Each 4Gb chip: 16 banks x 65536 rows x 1024 column
  addresses x 4 bits.

A cache line occupies 8 consecutive column addresses (the burst) of every
chip in a rank, so the line index of a column address is ``col // 8``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ModuleGeometry:
    """Physical organization of one DIMM."""

    name: str
    ranks: int
    chips_per_rank: int  #: including ECC chip(s)
    data_chips_per_rank: int
    bits_per_chip: int  #: chip output width (x4 / x8)
    banks: int
    rows: int
    cols: int  #: column addresses per row
    beats_per_line: int = 8

    @property
    def ecc_chips_per_rank(self) -> int:
        return self.chips_per_rank - self.data_chips_per_rank

    @property
    def total_chips(self) -> int:
        return self.ranks * self.chips_per_rank

    @property
    def lines_per_rank(self) -> int:
        return self.banks * self.rows * (self.cols // self.beats_per_line)

    @property
    def data_bytes(self) -> int:
        per_chip_bits = self.banks * self.rows * self.cols * self.bits_per_chip
        return self.ranks * self.data_chips_per_rank * per_chip_bits // 8

    def is_ecc_chip(self, chip: int) -> bool:
        """Chips are indexed with data chips first, ECC chip(s) last."""
        return chip >= self.data_chips_per_rank


#: 16GB x8 ECC DIMM (SECDED / SafeGuard-SECDED evaluations, Figure 6).
X8_SECDED_16GB = ModuleGeometry(
    name="x8-secded-16gb",
    ranks=2,
    chips_per_rank=9,
    data_chips_per_rank=8,
    bits_per_chip=8,
    banks=16,
    rows=65536,
    cols=1024,
)

#: 16GB x4 Chipkill DIMM (Chipkill / SafeGuard-Chipkill, Figure 10).
X4_CHIPKILL_16GB = ModuleGeometry(
    name="x4-chipkill-16gb",
    ranks=2,
    chips_per_rank=18,
    data_chips_per_rank=16,
    bits_per_chip=4,
    banks=16,
    rows=65536,
    cols=1024,
)
