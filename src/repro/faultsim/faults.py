"""Fault instances and address-overlap logic.

A :class:`FaultInstance` records where a fault landed (chip, rank, bank,
row, column, bit position) with ``None`` marking wildcard ("the whole
range") coordinates, following FaultSim's range-based representation.

Two faults interact when their address ranges intersect — i.e. some
(rank, bank, row, column) is covered by both — because the codeword at
that address then sees damage from both. Overlap can be tested at *word*
granularity (one column address; the SECDED codeword) or at *line*
granularity (8 consecutive column addresses; SafeGuard's codeword).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.faultsim.fit import Scope
from repro.faultsim.geometry import ModuleGeometry


class Pattern:
    """How a fault damages each affected word (per-chip footprint)."""

    SINGLE_BIT = "single_bit"  #: 1 bit in exactly one word
    VERTICAL = "vertical"  #: 1 bit per word (pin/bit-line column pattern)
    CHIP_WIDE = "chip_wide"  #: the chip's whole contribution per word


_SCOPE_PATTERN = {
    Scope.BIT: Pattern.SINGLE_BIT,
    Scope.COLUMN: Pattern.VERTICAL,
    Scope.WORD: Pattern.CHIP_WIDE,
    Scope.ROW: Pattern.CHIP_WIDE,
    Scope.BANK: Pattern.CHIP_WIDE,
    Scope.MULTIBANK: Pattern.CHIP_WIDE,
    Scope.MULTIRANK: Pattern.CHIP_WIDE,
}


@dataclass(frozen=True)
class FaultInstance:
    """One placed fault. ``None`` coordinates are wildcards."""

    scope: Scope
    transient: bool
    time_hours: float
    chip: int  #: chip index within a rank
    rank: Optional[int]  #: None for multirank faults
    bank: Optional[int]
    row: Optional[int]
    col: Optional[int]
    bit: Optional[int]  #: bit position within the chip's output width

    @property
    def pattern(self) -> str:
        """Per-word damage footprint of this fault."""
        return _SCOPE_PATTERN[self.scope]

    @property
    def bits_per_word(self) -> int:
        """Worst-case corrupted bits in one word codeword (chip-local)."""
        return 1 if self.pattern in (Pattern.SINGLE_BIT, Pattern.VERTICAL) else -1

    # -- overlap -----------------------------------------------------------------

    def overlaps(self, other: "FaultInstance", line_granularity: bool) -> bool:
        """True iff some address is damaged by both faults.

        With ``line_granularity`` the column coordinates are compared at
        cache-line resolution (``col // 8``), since SafeGuard's codeword
        spans the whole burst.
        """
        if not _wild_eq(self.rank, other.rank):
            return False
        if not _wild_eq(self.bank, other.bank):
            return False
        if not _wild_eq(self.row, other.row):
            return False
        col_a, col_b = self.col, other.col
        if line_granularity:
            col_a = None if col_a is None else col_a // 8
            col_b = None if col_b is None else col_b // 8
        return _wild_eq(col_a, col_b)

    def same_word_bit_conflict(self, other: "FaultInstance") -> bool:
        """Whether two 1-bit-per-word faults can hit the *same* word.

        A BIT fault and a COLUMN fault overlap in a word only when the
        column's bank/bit-line intersects the bit's exact address; the
        column's per-word damage is at its own bit position, so two
        vertical faults always conflict in every shared word.
        """
        return self.overlaps(other, line_granularity=False)


def _wild_eq(a: Optional[int], b: Optional[int]) -> bool:
    return a is None or b is None or a == b


def place_fault(
    scope: Scope,
    transient: bool,
    time_hours: float,
    chip: int,
    geometry: ModuleGeometry,
    rng: random.Random,
) -> FaultInstance:
    """Sample a concrete location for a fault of the given scope."""
    rank = rng.randrange(geometry.ranks)
    bank = rng.randrange(geometry.banks)
    row = rng.randrange(geometry.rows)
    col = rng.randrange(geometry.cols)
    bit = rng.randrange(geometry.bits_per_chip)
    if scope is Scope.BIT:
        return FaultInstance(scope, transient, time_hours, chip, rank, bank, row, col, bit)
    if scope is Scope.COLUMN:
        # Pin / bit-line failure: one bit position, all rows and columns of
        # a bank — the vertical per-line pattern of Figure 4.
        return FaultInstance(scope, transient, time_hours, chip, rank, bank, None, None, bit)
    if scope is Scope.WORD:
        return FaultInstance(scope, transient, time_hours, chip, rank, bank, row, col, None)
    if scope is Scope.ROW:
        return FaultInstance(scope, transient, time_hours, chip, rank, bank, row, None, None)
    if scope is Scope.BANK:
        return FaultInstance(scope, transient, time_hours, chip, rank, bank, None, None, None)
    if scope is Scope.MULTIBANK:
        return FaultInstance(scope, transient, time_hours, chip, rank, None, None, None, None)
    if scope is Scope.MULTIRANK:
        return FaultInstance(scope, transient, time_hours, chip, None, None, None, None, None)
    raise ValueError(f"unknown scope {scope}")
