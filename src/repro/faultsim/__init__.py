"""FaultSim-style Monte-Carlo DRAM reliability simulator.

Reimplements the methodology of FaultSim [34] as used by the paper's
Section III-B: fault arrivals are sampled per chip and per failure mode
from the field FIT rates of Sridharan & Liberty [43] (Table III); each
arrival is placed in the module's geometry and classified against the
already-present faults by a per-scheme evaluator; a module *fails* at the
first detected-uncorrectable (DUE) or silently-escaping (SDC) event.

- :mod:`repro.faultsim.fit` — Table III FIT rates and fault-mode catalog.
- :mod:`repro.faultsim.geometry` — module/chip geometry for the x8 SECDED
  and x4 Chipkill configurations.
- :mod:`repro.faultsim.faults` — fault instances, placement, and
  address-overlap logic.
- :mod:`repro.faultsim.evaluators` — per-scheme codeword evaluators
  (SECDED, SafeGuard with/without column parity, Chipkill,
  SafeGuard-Chipkill).
- :mod:`repro.faultsim.montecarlo` — the driver producing
  probability-of-system-failure curves (Figures 6 and 10).
- :mod:`repro.faultsim.parallel` — the sharded multi-process engine
  (checkpoint/resume, progress reporting) producing results
  bit-identical to the sequential driver.
- :mod:`repro.faultsim.fastpath` — the vectorized Monte-Carlo engine
  behind the ``REPRO_FAULTSIM=fast|reference`` switch: single-fault
  modules classified by numpy table lookups over derived outcome
  tables, multi-fault modules bit-identical to the reference loop.
"""

from repro.faultsim.fit import FaultMode, FAULT_MODES, total_fit, scale_fit
from repro.faultsim.geometry import ModuleGeometry, X8_SECDED_16GB, X4_CHIPKILL_16GB
from repro.faultsim.faults import FaultInstance, Scope, Pattern
from repro.faultsim.evaluators import (
    Outcome,
    SECDEDEvaluator,
    SafeGuardSECDEDEvaluator,
    ChipkillEvaluator,
    SafeGuardChipkillEvaluator,
)
from repro.faultsim.montecarlo import (
    FailureRecord,
    MonteCarloConfig,
    ReliabilityResult,
    merge_results,
    simulate,
)
from repro.faultsim.parallel import (
    ProgressStats,
    Shard,
    plan_shards,
    resolve_workers,
    simulate_parallel,
)
from repro.faultsim.fastpath import (
    engine_mode,
    forced_mode,
    resolve_engine,
    set_engine,
    simulate_range_fast,
)

__all__ = [
    "FaultMode",
    "FAULT_MODES",
    "total_fit",
    "scale_fit",
    "ModuleGeometry",
    "X8_SECDED_16GB",
    "X4_CHIPKILL_16GB",
    "FaultInstance",
    "Scope",
    "Pattern",
    "Outcome",
    "SECDEDEvaluator",
    "SafeGuardSECDEDEvaluator",
    "ChipkillEvaluator",
    "SafeGuardChipkillEvaluator",
    "MonteCarloConfig",
    "ReliabilityResult",
    "FailureRecord",
    "merge_results",
    "simulate",
    "simulate_parallel",
    "plan_shards",
    "resolve_workers",
    "ProgressStats",
    "Shard",
    "engine_mode",
    "forced_mode",
    "resolve_engine",
    "set_engine",
    "simulate_range_fast",
]
