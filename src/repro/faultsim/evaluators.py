"""Per-scheme codeword evaluators.

Each evaluator answers: given the faults already present in a module and
one newly arrived fault, is the new situation *corrected*, a *detected
uncorrectable error* (DUE), or a potential *silent data corruption* (SDC)?
Following FaultSim (and the paper's failure criterion), a module fails at
the first DUE **or** SDC.

The semantics encode Table IV:

=============  ==================  ======================  =================
fault mode     SECDED              SafeGuard (+parity)     SafeGuard (no par)
=============  ==================  ======================  =================
single bit     corrected           corrected (ECC-1)       corrected
single column  corrected (1b/word) corrected (data pins)   DUE
single word    DUE/SDC             DUE (MAC)               DUE
row/bank/...   SDC possible        DUE (MAC)               DUE
=============  ==================  ======================  =================

and the Chipkill semantics of Section V: one chip corrected; two chips
detected; three or more may escape (conventional Chipkill) whereas
SafeGuard-Chipkill detects arbitrary corruption (always DUE, never SDC).
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List

from repro.core import registry
from repro.faultsim.faults import FaultInstance, Pattern
from repro.faultsim.fit import Scope
from repro.faultsim.geometry import ModuleGeometry


class Outcome(enum.Enum):
    CORRECTED = "corrected"
    DUE = "due"
    SDC = "sdc"

    @property
    def is_failure(self) -> bool:
        return self is not Outcome.CORRECTED


class SECDEDEvaluator:
    """Conventional word-granularity (72,64) SECDED."""

    name = "SECDED"

    def __init__(self, geometry: ModuleGeometry):
        self.geometry = geometry

    def classify(self, existing: List[FaultInstance], new: FaultInstance) -> Outcome:
        if new.pattern == Pattern.CHIP_WIDE:
            # The chip's whole per-word contribution (4/8 bits) is suspect:
            # beyond double-error detection, so escapes are possible.
            return Outcome.SDC
        overlapping = [
            e for e in existing if e.overlaps(new, line_granularity=False)
        ]
        if not overlapping:
            return Outcome.CORRECTED
        # Two single-bit-per-word faults in one codeword -> 2 bits: DED
        # fires. Three or more corrupted bits exceed guaranteed detection.
        return Outcome.DUE if len(overlapping) == 1 else Outcome.SDC


class SafeGuardSECDEDEvaluator:
    """SafeGuard at line granularity: ECC-1 + MAC (+ column parity)."""

    def __init__(self, geometry: ModuleGeometry, column_parity: bool = True):
        self.geometry = geometry
        self.column_parity = column_parity
        self.name = (
            "SafeGuard+ColumnParity" if column_parity else "SafeGuard (no parity)"
        )

    def classify(self, existing: List[FaultInstance], new: FaultInstance) -> Outcome:
        # The MAC detects arbitrary corruption, so nothing is ever silent;
        # the only question is whether the fault is *corrected*.
        if new.pattern == Pattern.CHIP_WIDE:
            return Outcome.DUE
        overlapping = [e for e in existing if e.overlaps(new, line_granularity=True)]
        if new.scope is Scope.COLUMN:
            if not self.column_parity:
                # Vertical multi-bit pattern per line: ECC-1 cannot correct.
                return Outcome.DUE
            if self.geometry.is_ecc_chip(new.chip):
                # The 8-bit column parity covers only the 64 data pins
                # (Section IV-C); an ECC-chip pin failure corrupts the
                # metadata beyond ECC-1's single-bit reach.
                return Outcome.DUE
            return Outcome.DUE if overlapping else Outcome.CORRECTED
        # Single-bit fault: ECC-1 corrects it unless the line already
        # carries damage (the Section IV-B birthday case).
        return Outcome.DUE if overlapping else Outcome.CORRECTED


class ChipkillEvaluator:
    """Conventional x4 Chipkill: SSC, double-symbol detection."""

    name = "Chipkill"

    def __init__(self, geometry: ModuleGeometry):
        self.geometry = geometry

    #: Conventional Chipkill codewords cover one beat-pair, so faults
    #: interact at word (column-address) granularity.
    line_granularity = False

    def classify(self, existing: List[FaultInstance], new: FaultInstance) -> Outcome:
        overlapping = [
            e for e in existing if e.overlaps(new, self.line_granularity)
        ]
        chips = {e.chip for e in overlapping} | {new.chip}
        if len(chips) == 1:
            # Any damage confined to one chip is a single symbol: corrected.
            return Outcome.CORRECTED
        if len(chips) == 2:
            return Outcome.DUE
        return Outcome.SDC


class SafeGuardChipkillEvaluator(ChipkillEvaluator):
    """SafeGuard-Chipkill: chip parity corrects one chip, MAC detects all.

    The codeword (MAC + chip parity) spans the whole line, so faults
    interact at line granularity; any multi-chip damage is a DUE — never
    silent.
    """

    name = "SafeGuard-Chipkill"
    line_granularity = True

    def classify(self, existing: List[FaultInstance], new: FaultInstance) -> Outcome:
        outcome = super().classify(existing, new)
        return Outcome.DUE if outcome is Outcome.SDC else outcome


#: Registry scheme name -> FaultSim evaluator factory. The encrypted
#: variant shares its inner scheme's fault-outcome classes (encryption
#: changes what leaks, not what the codes correct or detect).
_EVALUATORS: Dict[str, Callable[[ModuleGeometry], object]] = {
    "secded": SECDEDEvaluator,
    "safeguard-secded": lambda g: SafeGuardSECDEDEvaluator(g, column_parity=True),
    "safeguard-secded-noparity": lambda g: SafeGuardSECDEDEvaluator(
        g, column_parity=False
    ),
    "encrypted-safeguard-secded": lambda g: SafeGuardSECDEDEvaluator(
        g, column_parity=True
    ),
    "chipkill": ChipkillEvaluator,
    "safeguard-chipkill": SafeGuardChipkillEvaluator,
}


def evaluator_for(scheme_name: str, geometry: ModuleGeometry):
    """FaultSim evaluator for a registered scheme, by registry name.

    Raises ``KeyError`` for names not in the scheme registry and
    ``ValueError`` for registered schemes (the standalone MAC baselines)
    that have no FaultSim reliability model.
    """
    registry.scheme(scheme_name)  # unknown names fail with the full list
    try:
        factory = _EVALUATORS[scheme_name]
    except KeyError:
        raise ValueError(
            f"scheme {scheme_name!r} has no FaultSim evaluator; "
            f"modeled: {', '.join(sorted(_EVALUATORS))}"
        ) from None
    return factory(geometry)
