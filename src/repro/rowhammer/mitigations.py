"""Hardware Row-Hammer mitigations (Sections II-D, VIII).

All mitigations observe the activate stream and answer with rows to
victim-refresh. Each is *precise* in the paper's taxonomy: it refreshes
the immediate neighbours of rows it believes are aggressors, and its
effectiveness therefore depends on (a) knowing the RH-Threshold its
parameters were sized for and (b) the attacker not exceeding its tracking
capacity or its blast-radius assumption — the levers TRRespass and
Half-Double pull. Crucially, a mitigation's *own* victim refreshes are
internal row activations it does not observe — the blind spot Half-Double
exploits.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import Dict, List

from repro.utils.rng import derive_seed


class Mitigation:
    """Interface: observe activations, optionally order victim refreshes."""

    name = "abstract"

    def on_activate(self, row: int) -> List[int]:
        """Rows to victim-refresh in response to this activation."""
        raise NotImplementedError

    def on_refresh_command(self) -> List[int]:
        """Rows to victim-refresh piggybacked on a periodic REF command."""
        return []

    def on_window_end(self) -> None:
        """Called at each 64ms auto-refresh boundary."""


class NoMitigation(Mitigation):
    """The unprotected baseline."""

    name = "none"

    def on_activate(self, row: int) -> List[int]:
        return []


class PARA(Mitigation):
    """Probabilistic Adjacent Row Activation (PARA [21]).

    On each activation, with probability ``p``, refresh the immediate
    neighbours. ``p`` must be sized for the RH-Threshold: designs pick
    p ~ confidence/threshold so that an aggressor is overwhelmingly likely
    to trigger a victim refresh well before the threshold. A module with a
    lower threshold than the design point re-opens the window
    (Section II-D), and the refreshes PARA issues are themselves
    activations adjacent to the refreshed row (Half-Double's lever).
    """

    name = "para"

    def __init__(self, probability: float = 0.002, seed: int = 0):
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0,1]")
        self.probability = probability
        self._rng = random.Random(derive_seed(seed, 0x9A7A))

    @classmethod
    def sized_for(cls, design_threshold: int, confidence: float = 15.0, seed: int = 0):
        """PARA sized for a given design-point threshold."""
        return cls(probability=min(1.0, confidence / design_threshold), seed=seed)

    def on_activate(self, row: int) -> List[int]:
        if self._rng.random() < self.probability:
            return [row - 1, row + 1]
        return []


class TRRMitigation(Mitigation):
    """Target Row Refresh-style in-DRAM tracker (Section II-E, Case 2).

    Tracks the most recently activated distinct rows in a small FIFO
    table (in-DRAM samplers are recency/capacity-limited); each REF
    command victim-refreshes the neighbours of the tracked rows and clears
    the table. TRRespass defeats it by flushing the table with dummy-row
    activations timed just before each REF, so the table holds dummies —
    not the true aggressors — whenever mitigation happens.
    """

    name = "trr"

    def __init__(self, table_size: int = 4):
        self.table_size = table_size
        self._table: "OrderedDict[int, int]" = OrderedDict()

    def on_activate(self, row: int) -> List[int]:
        if row in self._table:
            self._table[row] += 1
            self._table.move_to_end(row)
        else:
            self._table[row] = 1
            while len(self._table) > self.table_size:
                self._table.popitem(last=False)
        return []

    def on_refresh_command(self) -> List[int]:
        refreshes: List[int] = []
        for row in self._table:
            refreshes.extend((row - 1, row + 1))
        self._table.clear()
        return refreshes


class GrapheneMitigation(Mitigation):
    """Graphene-style Misra-Gries tracking [35].

    Misra-Gries counting guarantees every row activated more than
    ``window / (n_counters + 1)`` times in a refresh window is tracked —
    there is no eviction pattern (TRRespass-style) that defeats it at its
    design threshold. Neighbours are refreshed whenever a counter reaches
    a quarter of the design threshold; counters persist until the 64ms
    window ends. The design-point dependence remains: a module with a
    lower actual threshold, or an attacker whose flips ride the
    mitigation's own refreshes (Half-Double), still breaks through.
    """

    name = "graphene"

    def __init__(self, design_threshold: int = 4800, window_activations: int = 1_360_000):
        self.design_threshold = design_threshold
        #: Refresh neighbours every time a counter reaches a quarter of
        #: the design threshold (margin for double-sided accumulation).
        self.mitigation_count = max(1, design_threshold // 4)
        self.n_counters = max(8, window_activations // self.mitigation_count + 1)
        self._counters: Dict[int, int] = {}

    def on_activate(self, row: int) -> List[int]:
        count = self._counters.get(row)
        if count is not None:
            count += 1
            if count >= self.mitigation_count:
                self._counters[row] = 0
                return [row - 1, row + 1]
            self._counters[row] = count
            return []
        if len(self._counters) < self.n_counters:
            self._counters[row] = 1
            return []
        # Misra-Gries decrement-all step.
        for key in list(self._counters):
            self._counters[key] -= 1
            if self._counters[key] <= 0:
                del self._counters[key]
        return []

    def on_window_end(self) -> None:
        self._counters.clear()
