"""Per-row disturbance-accumulation Row-Hammer model.

Physics abstraction (Section II-C): every activation of row ``r`` leaks a
little charge from nearby rows; a victim flips bits once the accumulated
disturbance since its last refresh crosses the RH-Threshold. The model
tracks one disturbance counter per row with distance-dependent coupling:
distance-1 neighbours take the full unit of disturbance per activation,
distance-2 neighbours a small fraction (direct distance-2 flips need far
more activations — consistent with [9]'s characterization).

Two further properties matter for fidelity to the attacks:

- **A refresh is an activation.** Refreshing a row resets *its* counter
  but disturbs *its* neighbours exactly like an activation — this is the
  mechanism Half-Double [9] turns against precise mitigations: the
  mitigation's own victim-refreshes of the near row hammer the row beyond
  it. Periodic all-bank auto-refresh is modelled as a plain counter reset
  (its disturbance contribution is part of the calibrated threshold).
- **Bit-flips are cell-dependent.** Each row has a pseudorandom set of
  weak cells (the data-dependence of RH failures); crossing multiples of
  the threshold flips progressively more of them, so sustained hammering
  escalates from single-bit to multi-bit corruption (the ECCploit
  escalation of Section II-E).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.dram.timing import max_activations_per_refresh_window
from repro.utils.rng import derive_seed

#: REF commands per 64ms refresh window (tREFI = 7.8us -> 8192 per 64ms).
REFS_PER_WINDOW = 8192

#: Activations between consecutive REF commands at the full attack
#: budget: the one source of truth for the REF cadence that REF-gated
#: schedules (TRRespass flush bursts) synchronize against. The runner
#: derives the actual per-run cadence from its budget and
#: ``REFS_PER_WINDOW``; this constant is only the default for schedules
#: iterated outside a runner. Keeping it derived (not a copied literal)
#: means an override of the refresh interval can never desynchronize
#: attack schedules from the mitigation's actual REF cadence.
DEFAULT_REF_PERIOD = max(1, max_activations_per_refresh_window() // REFS_PER_WINDOW)


@dataclass
class RowHammerConfig:
    """Disturbance-model parameters."""

    n_rows: int = 128
    #: Bits per row (e.g. 8KB row buffer = 65536; kept small for speed).
    bits_per_row: int = 8192
    #: Activations on an adjacent aggressor required to flip bits.
    rh_threshold: int = 4800
    #: Disturbance per activation at distance 1 (units of activations).
    coupling_d1: float = 1.0
    #: Disturbance per activation at distance 2 (direct; weak). At 0.003
    #: the direct distance-2 threshold is ~1.6M activations — beyond one
    #: refresh window's activation budget, so distance-2 victims flip only
    #: with the mitigation's unwitting help (the Half-Double regime [9]).
    coupling_d2: float = 0.003
    #: Maximum distance at which coupling acts.
    blast_radius: int = 2
    #: Weak cells per row (flippable by RH; data-dependent in practice).
    weak_cells_per_row: int = 24
    #: Expected flips each time a row's disturbance crosses the threshold.
    flips_per_crossing: float = 2.0
    seed: int = 0


class DisturbanceModel:
    """Tracks disturbance and produces victim bit-flips."""

    def __init__(self, config: Optional[RowHammerConfig] = None):
        self.config = config or RowHammerConfig()
        self._disturbance: Dict[int, float] = {}
        #: Bits already flipped (and not yet restored by refresh): row -> bits.
        self.flipped: Dict[int, Set[int]] = {}
        self._weak_cells: Dict[int, List[int]] = {}
        self._rng = random.Random(derive_seed(self.config.seed, 0xBEEF))
        self.activations = 0
        self.mitigation_refreshes = 0

    # -- access operations ---------------------------------------------------

    def activate(self, row: int) -> List[Tuple[int, List[int]]]:
        """Activate ``row``; returns newly flipped (victim_row, bits).

        Activating a row restores its own cells (its data is rewritten on
        precharge), so its disturbance counter — and any flips it had —
        are cleared, mirroring why victims must not be accessed during an
        attack (Section II-C).
        """
        self.activations += 1
        self._restore(row)
        return self._disturb_neighbors(row)

    def mitigation_refresh(self, row: int) -> List[Tuple[int, List[int]]]:
        """A victim-refresh issued by an RH mitigation.

        Restores the target row but — being a row activation — disturbs
        the rows adjacent to *it* (the Half-Double lever).
        """
        self.mitigation_refreshes += 1
        self._restore(row)
        return self._disturb_neighbors(row)

    def periodic_refresh(self) -> None:
        """The 64ms auto-refresh: every row restored."""
        self._disturbance.clear()
        self.flipped.clear()

    # -- queries ----------------------------------------------------------------

    def disturbance(self, row: int) -> float:
        return self._disturbance.get(row, 0.0)

    def flips_in(self, row: int) -> Set[int]:
        return self.flipped.get(row, set())

    def total_flips(self) -> int:
        return sum(len(bits) for bits in self.flipped.values())

    # -- internals -----------------------------------------------------------------

    def _restore(self, row: int) -> None:
        self._disturbance.pop(row, None)
        self.flipped.pop(row, None)

    def _disturb_neighbors(self, row: int) -> List[Tuple[int, List[int]]]:
        cfg = self.config
        new_flips: List[Tuple[int, List[int]]] = []
        for distance in range(1, cfg.blast_radius + 1):
            coupling = cfg.coupling_d1 if distance == 1 else (
                cfg.coupling_d2 / (4 ** (distance - 2))
            )
            for victim in (row - distance, row + distance):
                if not 0 <= victim < cfg.n_rows:
                    continue
                level = self._disturbance.get(victim, 0.0) + coupling
                self._disturbance[victim] = level
                flips = self._maybe_flip(victim, level)
                if flips:
                    new_flips.append((victim, flips))
        return new_flips

    def _maybe_flip(self, victim: int, level: float) -> List[int]:
        cfg = self.config
        crossings = int(level // cfg.rh_threshold)
        if crossings <= 0:
            return []
        already = self.flipped.setdefault(victim, set())
        weak = self._weak_cells_of(victim)
        # Expected flips scale with threshold crossings; cap at the row's
        # weak-cell population.
        expected = min(cfg.flips_per_crossing * crossings, len(weak))
        target = min(len(weak), self._poisson(expected))
        new_bits = []
        for bit in weak:
            if len(already) >= target:
                break
            if bit not in already:
                already.add(bit)
                new_bits.append(bit)
        return new_bits

    def _weak_cells_of(self, row: int) -> List[int]:
        cells = self._weak_cells.get(row)
        if cells is None:
            rng = random.Random(derive_seed(self.config.seed, 0xCE11, row))
            cells = sorted(
                rng.sample(range(self.config.bits_per_row),
                           self.config.weak_cells_per_row)
            )
            self._weak_cells[row] = cells
        return cells

    def _poisson(self, lam: float) -> int:
        # Knuth's method is fine at the small lambdas used here.
        if lam <= 0:
            return 0
        import math

        l = math.exp(-lam)
        k, p = 0, 1.0
        while True:
            p *= self._rng.random()
            if p <= l:
                return k
            k += 1
