"""Isolation-based mitigation: guard rows between security domains.

The third of Section II-D's four mitigation classes (CATT [4], ZebRAM
[23], RIP-RH [3]): the allocator keeps ``guard_distance`` unused rows
between rows of different security domains, so hammering attacker-owned
rows cannot disturb victim rows — *if* the blast-radius assumption holds.
"These techniques only consider the immediate adjacent row and may be
vulnerable to more complex patterns": with a single guard row, a
Half-Double-style pattern crosses the band — the attacker hammers its own
boundary row, the deployed in-DRAM mitigation dutifully refreshes the
*guard* row (the boundary row's neighbour), and those refreshes are
activations adjacent to the victim's first row.

:class:`GuardRowAllocator` implements the placement policy;
:func:`evaluate_isolation` runs the boundary-hammering campaign for a
given guard distance and reports cross-domain flips and the capacity the
guards cost (full ZebRAM-style striping sacrifices half of memory).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.rowhammer.attacks import AttackPattern, _round_robin
from repro.rowhammer.mitigations import Mitigation, NoMitigation
from repro.rowhammer.model import DisturbanceModel, RowHammerConfig
from repro.rowhammer.runner import AttackRunner


@dataclass(frozen=True)
class DomainLayout:
    """Row ranges assigned per security domain, with guards between."""

    domain_rows: Dict[str, List[int]]
    guard_rows: List[int]
    total_rows: int

    @property
    def capacity_overhead(self) -> float:
        """Fraction of rows sacrificed to guards."""
        return len(self.guard_rows) / self.total_rows if self.total_rows else 0.0


class GuardRowAllocator:
    """Contiguous-stripe domain allocator with guard rows between."""

    def __init__(self, n_rows: int, guard_distance: int = 1):
        if guard_distance < 0:
            raise ValueError("guard_distance must be non-negative")
        self.n_rows = n_rows
        self.guard_distance = guard_distance

    def place(self, domains: List[str], rows_per_domain: int) -> DomainLayout:
        """Lay out domains as contiguous stripes separated by guards."""
        layout: Dict[str, List[int]] = {name: [] for name in domains}
        guards: List[int] = []
        row = 0
        for index, name in enumerate(domains):
            if index > 0:
                for _ in range(self.guard_distance):
                    if row < self.n_rows:
                        guards.append(row)
                        row += 1
            for _ in range(rows_per_domain):
                if row >= self.n_rows:
                    raise ValueError("layout does not fit in the bank")
                layout[name].append(row)
                row += 1
        return DomainLayout(layout, guards, self.n_rows)


@dataclass
class IsolationOutcome:
    guard_distance: int
    mitigation: str
    cross_domain_flips: int
    guard_row_flips: int
    own_domain_flips: int
    capacity_overhead: float

    @property
    def isolation_held(self) -> bool:
        return self.cross_domain_flips == 0


def evaluate_isolation(
    guard_distance: int,
    mitigation_factory: Optional[Callable[[], Mitigation]] = None,
    rh_threshold: int = 1200,
    budget: int = 340_000,
    seed: int = 1,
) -> IsolationOutcome:
    """Hammer the attacker's boundary rows toward the victim domain.

    The attacker activates only rows it owns — its two rows nearest the
    guard band, the strongest legal position. Bit-flips landing in the
    victim's rows breach isolation; flips inside the attacker's own
    domain or the guard rows do not.
    """
    config = RowHammerConfig(rh_threshold=rh_threshold, seed=seed)
    model = DisturbanceModel(config)
    allocator = GuardRowAllocator(config.n_rows, guard_distance)
    layout = allocator.place(["attacker", "victim"], rows_per_domain=48)
    attacker_rows = layout.domain_rows["attacker"]
    victim_rows = set(layout.domain_rows["victim"])
    guard_rows = set(layout.guard_rows)

    boundary = attacker_rows[-1]
    aggressors = [boundary, boundary - 2]  # a legal pseudo-double-sided pair
    attack = AttackPattern(
        name=f"boundary-hammer(guard={guard_distance})",
        aggressors=tuple(aggressors),
        intended_victims=tuple(sorted(victim_rows)),
        schedule=_round_robin(aggressors),
    )
    mitigation = mitigation_factory() if mitigation_factory else NoMitigation()
    result = AttackRunner(model, mitigation).run(attack, windows=1, budget=budget)

    cross = sum(c for row, c in result.flips_by_row.items() if row in victim_rows)
    in_guards = sum(c for row, c in result.flips_by_row.items() if row in guard_rows)
    own = sum(
        c for row, c in result.flips_by_row.items() if row in set(attacker_rows)
    )
    return IsolationOutcome(
        guard_distance=guard_distance,
        mitigation=mitigation.name,
        cross_domain_flips=cross,
        guard_row_flips=in_guards,
        own_domain_flips=own,
        capacity_overhead=layout.capacity_overhead,
    )
