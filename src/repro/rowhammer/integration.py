"""Wiring Row-Hammer flips into the memory-controller data paths.

This is the paper's core argument made executable (Figure 1c): take the
bit-flips of a breakthrough attack, apply them to the stored bits of each
memory organization, read the victim lines back, and classify what the
*software* would consume:

- conventional ECC: single-bit flips are corrected, double-bit detected,
  wider flips silently consumed or miscorrected (SDC — the security risk);
- SafeGuard: the same flips are either corrected or flagged as DUEs —
  never silently consumed (a reliability event, not a security risk).

Classification comes from the controller's own pipeline instrumentation
(:class:`~repro.core.types.ControllerStats` deltas — every scheme reports
the same counters through the same observation path), not from ad-hoc
per-read bookkeeping here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Set

from repro.core.types import ControllerStats
from repro.utils.bits import LINE_BITS


@dataclass
class ConsumptionOutcome:
    """What reads of attacked lines returned, per organization."""

    organization: str
    lines_read: int = 0
    clean: int = 0
    corrected: int = 0
    detected_ue: int = 0
    silent_corruptions: int = 0  #: non-DUE reads whose data was wrong

    @property
    def security_risk(self) -> bool:
        """True if any corrupted data was silently consumed."""
        return self.silent_corruptions > 0

    def add_stats(self, delta: ControllerStats) -> None:
        """Accumulate a controller-stats delta (one batch of reads)."""
        self.lines_read += delta.reads
        self.clean += delta.clean_reads
        self.corrected += delta.corrected
        self.detected_ue += delta.dues
        self.silent_corruptions += delta.silent_corruptions

    def merge(self, other: "ConsumptionOutcome") -> None:
        self.lines_read += other.lines_read
        self.clean += other.clean
        self.corrected += other.corrected
        self.detected_ue += other.detected_ue
        self.silent_corruptions += other.silent_corruptions


class VictimArray:
    """Maps a DRAM bank's rows onto cache lines of a controller.

    Row ``r`` holds ``bits_per_row / 512`` consecutive cache lines
    starting at ``base + r * bits_per_row / 8``. Sensitive data (say, page
    tables) is written through the controller; attack flips are then
    applied to the stored bits; reads classify the consumption outcome.
    """

    def __init__(self, controller, bits_per_row: int, base_address: int = 0,
                 fill_byte: bytes = b"\xA5"):
        if bits_per_row % LINE_BITS:
            raise ValueError("bits_per_row must be a multiple of 512")
        self.controller = controller
        self.bits_per_row = bits_per_row
        self.lines_per_row = bits_per_row // LINE_BITS
        self.base = base_address
        self._fill = fill_byte * 64
        self._written_rows: Set[int] = set()

    # -- layout -----------------------------------------------------------------

    def line_address(self, row: int, line_index: int) -> int:
        return self.base + (row * self.lines_per_row + line_index) * 64

    def populate_row(self, row: int) -> None:
        """Write the row's lines through the controller."""
        for i in range(self.lines_per_row):
            self.controller.write(self.line_address(row, i), self._fill)
        self._written_rows.add(row)

    # -- attack application ------------------------------------------------------

    def apply_flips(self, flips_by_row: Dict[int, Iterable[int]]) -> int:
        """Apply model bit-flips to the stored lines; returns #bits applied."""
        applied = 0
        for row, bits in flips_by_row.items():
            if row not in self._written_rows:
                continue
            masks: Dict[int, int] = {}
            for bit in bits:
                line_index, bit_in_line = divmod(bit, LINE_BITS)
                if line_index >= self.lines_per_row:
                    continue
                address = self.line_address(row, line_index)
                masks[address] = masks.get(address, 0) | (1 << bit_in_line)
                applied += 1
            for address, mask in masks.items():
                self.controller.inject_data_bits(address, mask)
        return applied

    # -- consumption --------------------------------------------------------------

    def read_all(self, organization_name: str = "") -> ConsumptionOutcome:
        """Read every populated line; classify what software would see.

        Classification is the controller's own: the stats delta across the
        sweep supplies clean/corrected/DUE counts and the golden-copy
        silent-corruption verdict.
        """
        outcome = ConsumptionOutcome(
            organization=organization_name or type(self.controller).__name__
        )
        before = self.controller.stats.snapshot()
        addresses = [
            self.line_address(row, i)
            for row in sorted(self._written_rows)
            for i in range(self.lines_per_row)
        ]
        if hasattr(self.controller, "access_many"):
            self.controller.access_many(addresses)
        else:
            for address in addresses:
                self.controller.read(address)
        outcome.add_stats(self.controller.stats.delta(before))
        return outcome
