"""Automated access-pattern search (Blacksmith-style fuzzing).

The paper's core motivation is that "newer attacks with more intelligent
access patterns continue to break through existing RH mitigation" — a
process that has since been automated (Blacksmith, USENIX Sec'22, fuzzes
non-uniform patterns against in-DRAM TRR). This module implements that
search loop against our mitigation zoo: a pattern *genome* (aggressor
offsets, per-row intensities, optional REF-synchronized dummy flushing)
is sampled and mutated, each candidate is scored by the victim flips it
achieves in one refresh window, and the search keeps the best.

The takeaway it produces is the paper's Figure 1c argument in mechanized
form: given enough trials, some pattern breaks each precise mitigation —
so the system needs detection that is pattern-independent.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.rowhammer.attacks import (
    AttackPattern,
    SchedulePhase,
    compile_schedule,
    expand_weights,
)
from repro.rowhammer.mitigations import Mitigation
from repro.rowhammer.model import DisturbanceModel, RowHammerConfig
from repro.rowhammer.runner import AttackRunner


@dataclass(frozen=True)
class PatternGenome:
    """A randomized hammering schedule around a victim row.

    Construction validates the genome: it must hammer *something* (at
    least one aggressor with positive weight — an all-zero-weight genome
    used to crash ``to_attack`` with a ``ZeroDivisionError``), aggressor
    offsets must not be 0, and flush offsets must stay out of
    ``{-1, 0, +1}`` — a flush row landing on the victim refreshes it,
    and one landing on a distance-1 neighbour doubles as an extra true
    aggressor; either silently mis-scores the genome.
    """

    #: (row offset from victim, weight) pairs; offset 0 is forbidden
    #: (touching the victim refreshes it).
    aggressors: Tuple[Tuple[int, int], ...]
    #: Dummy rows activated just before each REF (tracker flushing).
    flush_rows: Tuple[int, ...]
    flush_burst: int

    def __post_init__(self) -> None:
        if not self.aggressors:
            raise ValueError("a genome needs at least one aggressor")
        total_weight = 0
        for offset, weight in self.aggressors:
            if offset == 0:
                raise ValueError(
                    "aggressor offset 0 is forbidden "
                    "(touching the victim refreshes it)"
                )
            if weight < 0:
                raise ValueError(f"aggressor weight must be >= 0, got {weight}")
            total_weight += weight
        if total_weight == 0:
            raise ValueError(
                "every aggressor weight is 0: the genome hammers nothing"
            )
        for offset in self.flush_rows:
            if offset in (-1, 0, 1):
                raise ValueError(
                    f"flush offset {offset} is forbidden: it lands on the "
                    "victim or a distance-1 neighbour and corrupts scoring"
                )
        if self.flush_burst < 0:
            raise ValueError(
                f"flush_burst must be >= 0, got {self.flush_burst}"
            )

    def to_attack(self, victim: int) -> AttackPattern:
        phases = [
            SchedulePhase(
                rows=expand_weights(
                    [(victim + offset, weight) for offset, weight in self.aggressors]
                )
            )
        ]
        flush = tuple(victim + offset for offset in self.flush_rows)
        if flush and self.flush_burst > 0:
            phases.append(SchedulePhase(rows=flush, reads=self.flush_burst))
        return AttackPattern(
            name="fuzzed",
            aggressors=tuple(sorted({victim + o for o, _ in self.aggressors})),
            intended_victims=(victim,),
            schedule=compile_schedule(phases),
        )

    def to_playbook(self, name: str, summary: str = "") -> dict:
        """The genome as a playbook payload (victim-relative offsets).

        Compiling the returned payload reproduces ``to_attack``'s
        activation stream bit-identically for any in-bank victim, which
        is how fuzzer champions become named library scenarios in
        :mod:`repro.rowhammer.playbook`.
        """
        phases: List[dict] = [
            {
                "rows": [
                    {"offset": offset, "weight": weight}
                    for offset, weight in self.aggressors
                ]
            }
        ]
        if self.flush_rows and self.flush_burst > 0:
            phases.append(
                {
                    "rows": [{"offset": offset} for offset in self.flush_rows],
                    "reads": self.flush_burst,
                }
            )
        payload = {"name": name, "phases": phases, "victims": [0]}
        if summary:
            payload["summary"] = summary
        return payload


@dataclass
class FuzzResult:
    trials: int
    best_genome: Optional[PatternGenome]
    best_flips: int
    trials_to_first_break: Optional[int]
    history: List[int] = field(default_factory=list)

    @property
    def found_breakthrough(self) -> bool:
        return self.best_flips > 0


class PatternFuzzer:
    """Random-search fuzzer for mitigation-breaking access patterns."""

    OFFSETS = (-3, -2, -1, 1, 2, 3)

    def __init__(
        self,
        mitigation_factory: Callable[[], Mitigation],
        rh_threshold: int = 600,
        budget: int = 120_000,
        victim: int = 64,
        seed: int = 0,
    ):
        self.mitigation_factory = mitigation_factory
        self.rh_threshold = rh_threshold
        self.budget = budget
        self.victim = victim
        self._rng = random.Random(seed)

    # -- genome sampling -----------------------------------------------------------

    def random_genome(self) -> PatternGenome:
        rng = self._rng
        n_aggressors = rng.randint(1, 4)
        aggressors = tuple(
            (rng.choice(self.OFFSETS), rng.randint(1, 4))
            for _ in range(n_aggressors)
        )
        if rng.random() < 0.5:
            flush = tuple(
                rng.randrange(10, 60) for _ in range(rng.randint(2, 10))
            )
            burst = rng.randint(2, 8)
        else:
            flush, burst = (), 0
        return PatternGenome(aggressors, flush, burst)

    def mutate(self, genome: PatternGenome) -> PatternGenome:
        rng = self._rng
        aggressors = list(genome.aggressors)
        choice = rng.random()
        if choice < 0.4 and aggressors:
            index = rng.randrange(len(aggressors))
            offset, weight = aggressors[index]
            aggressors[index] = (
                rng.choice(self.OFFSETS),
                max(1, weight + rng.choice((-1, 1))),
            )
        elif choice < 0.6 and len(aggressors) < 6:
            aggressors.append((rng.choice(self.OFFSETS), rng.randint(1, 4)))
        elif choice < 0.8:
            flush = tuple(rng.randrange(10, 60) for _ in range(rng.randint(2, 10)))
            return PatternGenome(tuple(aggressors), flush, rng.randint(2, 8))
        else:
            return self.random_genome()
        return PatternGenome(tuple(aggressors), genome.flush_rows, genome.flush_burst)

    # -- evaluation -----------------------------------------------------------------

    def score(self, genome: PatternGenome, seed: int = 1) -> int:
        model = DisturbanceModel(
            RowHammerConfig(rh_threshold=self.rh_threshold, seed=seed)
        )
        runner = AttackRunner(model, self.mitigation_factory())
        result = runner.run(genome.to_attack(self.victim), windows=1, budget=self.budget)
        return result.intended_flips

    def search(self, n_trials: int = 30) -> FuzzResult:
        """Random search with greedy mutation of the incumbent."""
        best_genome: Optional[PatternGenome] = None
        best_flips = 0
        first_break: Optional[int] = None
        history: List[int] = []
        for trial in range(n_trials):
            candidate = (
                self.mutate(best_genome)
                if best_genome is not None and self._rng.random() < 0.6
                else self.random_genome()
            )
            flips = self.score(candidate)
            history.append(flips)
            if flips > best_flips:
                best_flips, best_genome = flips, candidate
                if first_break is None and flips > 0:
                    first_break = trial + 1
        return FuzzResult(
            trials=n_trials,
            best_genome=best_genome,
            best_flips=best_flips,
            trials_to_first_break=first_break,
            history=history,
        )
