"""ECCploit-style timing-channel attack (Section II-E, Case 3).

ECC correction takes observably longer than a clean read; ECCploit [6]
uses that latency difference as an oracle to discover, one at a time,
which cells of a victim word can be flipped — each individual flip being
silently corrected by SECDED — and then composes the discovered flips
simultaneously. Three or more errors in one (72,64) word are beyond
SEC-DED's guarantee: the decode typically *miscorrects*, handing software
silently corrupted data.

Against SafeGuard the same oracle still reveals correctable flips (the
paper concedes the timing channel exists, Section VII-D), but composing
them cannot escape the MAC: the read becomes a DUE, not an SDC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.types import ReadStatus


@dataclass
class ECCploitResult:
    """Outcome of the composed multi-bit attack."""

    organization: str
    template_bits: List[int]  #: oracle-confirmed flippable bits (one word)
    final_status: ReadStatus
    silent_corruption: bool  #: data consumed differed from golden, no DUE

    @property
    def attack_succeeded(self) -> bool:
        return self.silent_corruption


class ECCploitAttack:
    """Template-then-compose attack against a line-read data path.

    ``controller`` must expose ``write``/``read``/``inject_data_bits`` and
    a golden copy via ``backend.golden`` (all controllers in
    :mod:`repro.core` do).
    """

    def __init__(self, controller, address: int = 0x1000):
        self.controller = controller
        self.address = address
        self._golden = b"\x5A" * 64
        controller.write(address, self._golden)

    # -- phase 1: templating via the timing oracle ------------------------------

    def probe_bit(self, bit: int) -> bool:
        """Flip one stored bit and observe the correction latency.

        Returns True when the read was *slower than a clean read* (i.e.
        a correction or recovery took place) — the information the
        timing channel leaks. The flip is then reverted (in real ECCploit
        the refresh/rewrite restores the cell; here we restore by
        rewriting the line).
        """
        self.controller.inject_data_bits(self.address, 1 << bit)
        result = self.controller.read(self.address)
        slow = result.status is not ReadStatus.CLEAN
        # Restore for the next template probe.
        self.controller.write(self.address, self._golden)
        return slow

    def find_templates(self, candidate_bits: Sequence[int], needed: int) -> List[int]:
        """Find ``needed`` oracle-confirmed flippable bits."""
        found: List[int] = []
        for bit in candidate_bits:
            if self.probe_bit(bit):
                found.append(bit)
            if len(found) >= needed:
                break
        return found

    # -- phase 2: compose the discovered flips -----------------------------------

    def compose(self, bits: Sequence[int]) -> ECCploitResult:
        """Flip all template bits simultaneously and consume the line."""
        mask = 0
        for bit in bits:
            mask |= 1 << bit
        self.controller.inject_data_bits(self.address, mask)
        result = self.controller.read(self.address)
        silent = result.ok and result.data != self._golden
        return ECCploitResult(
            organization=type(self.controller).__name__,
            template_bits=list(bits),
            final_status=result.status,
            silent_corruption=silent,
        )

    def run(self, word_index: int = 0, n_flips: int = 3) -> ECCploitResult:
        """Full attack: template ``n_flips`` bits of one word, compose.

        Bits are drawn from a single 64-bit word so the composed error is
        confined to one SECDED codeword — the configuration that defeats
        SEC-DED (3+ errors in one word).
        """
        candidates = [word_index * 64 + i for i in range(0, 64, 5)]
        templates = self.find_templates(candidates, n_flips)
        if len(templates) < n_flips:
            raise RuntimeError("timing oracle found too few flippable bits")
        return self.compose(templates)
