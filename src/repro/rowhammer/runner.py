"""Drive an attack pattern against a mitigation over refresh windows."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.rowhammer.attacks import AttackPattern
from repro.rowhammer.mitigations import Mitigation, NoMitigation
from repro.rowhammer.model import REFS_PER_WINDOW, DisturbanceModel

from repro.dram.timing import max_activations_per_refresh_window

#: Activations an attacker can issue to one bank per 64ms refresh window,
#: derived from the DDR4-3200 timing model's tRC (~1.38M; a realistic
#: attack loop achieves somewhat less).
ACTIVATIONS_PER_WINDOW = max_activations_per_refresh_window()

__all__ = [
    "ACTIVATIONS_PER_WINDOW",
    "REFS_PER_WINDOW",
    "AttackResult",
    "AttackRunner",
]


@dataclass
class AttackResult:
    """Outcome of an attack campaign."""

    attack: str
    mitigation: str
    windows: int
    activations: int
    mitigation_refreshes: int
    #: All flips observed, per victim row (accumulated across windows).
    flips_by_row: Dict[int, int]
    #: Flips that landed in the attack's *intended* victims.
    intended_flips: int
    #: Exact flipped bit positions at the end of the final window (before
    #: the closing auto-refresh), for wiring into a data path.
    final_flip_bits: Dict[int, Set[int]] = field(default_factory=dict)
    #: Activations denied by a throttling mitigation (BlockHammer).
    blocked_activations: int = 0

    @property
    def total_flips(self) -> int:
        return sum(self.flips_by_row.values())

    @property
    def broke_through(self) -> bool:
        """Did the attack flip bits despite the mitigation?"""
        return self.intended_flips > 0


class AttackRunner:
    """Runs attack windows: ACT stream + mitigation + periodic REF."""

    def __init__(
        self,
        model: Optional[DisturbanceModel] = None,
        mitigation: Optional[Mitigation] = None,
        activations_per_window: int = ACTIVATIONS_PER_WINDOW,
        refs_per_window: int = REFS_PER_WINDOW,
    ):
        self.model = model or DisturbanceModel()
        self.mitigation = mitigation or NoMitigation()
        self.activations_per_window = activations_per_window
        self.refs_per_window = refs_per_window

    def run(
        self, attack: AttackPattern, windows: int = 1, budget: Optional[int] = None
    ) -> AttackResult:
        """Execute ``windows`` refresh windows of the attack."""
        budget = budget if budget is not None else self.activations_per_window
        ref_period = max(1, budget // self.refs_per_window)
        flips_by_row: Dict[int, int] = {}
        intended = set(attack.intended_victims)
        intended_flips = 0
        throttled = getattr(self.mitigation, "permits", None)
        blocked_activations = 0
        final_flip_bits: Dict[int, Set[int]] = {}
        for _ in range(windows):
            acts = 0
            for row in attack.activations(budget, ref_period):
                acts += 1
                if throttled is not None and not throttled(row).allowed:
                    # BlockHammer-style throttling: the activation slot is
                    # consumed but the row is not activated.
                    blocked_activations += 1
                    if acts % ref_period == 0:
                        self._apply_mitigation(self.mitigation.on_refresh_command())
                    continue
                new_flips = self.model.activate(row)
                new_flips += self._apply_mitigation(
                    self.mitigation.on_activate(row)
                )
                if acts % ref_period == 0:
                    new_flips += self._apply_mitigation(
                        self.mitigation.on_refresh_command()
                    )
                for victim, bits in new_flips:
                    flips_by_row[victim] = flips_by_row.get(victim, 0) + len(bits)
                    if victim in intended:
                        intended_flips += len(bits)
            final_flip_bits = {
                row: set(bits) for row, bits in self.model.flipped.items()
            }
            # End of the 64ms window: every row is auto-refreshed.
            self.mitigation.on_window_end()
            self.model.periodic_refresh()
        return AttackResult(
            attack=attack.name,
            mitigation=self.mitigation.name,
            windows=windows,
            activations=self.model.activations,
            mitigation_refreshes=self.model.mitigation_refreshes,
            flips_by_row=flips_by_row,
            intended_flips=intended_flips,
            final_flip_bits=final_flip_bits,
            blocked_activations=blocked_activations,
        )

    def _apply_mitigation(self, rows: List[int]) -> List[Tuple[int, List[int]]]:
        flips: List[Tuple[int, List[int]]] = []
        for row in rows:
            if 0 <= row < self.model.config.n_rows:
                flips.extend(self.model.mitigation_refresh(row))
        return flips
