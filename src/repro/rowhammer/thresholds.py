"""Row-Hammer thresholds over time (Table I / Figure 1a)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class ThresholdEntry:
    """One row of Table I."""

    generation: str
    year: int
    threshold_low: int
    threshold_high: Optional[int] = None

    @property
    def threshold(self) -> int:
        return self.threshold_low


#: Table I: Row-Hammer threshold per DRAM generation [21], [19], [9].
RH_THRESHOLDS: List[ThresholdEntry] = [
    ThresholdEntry("DDR3 (old)", 2014, 139_000),
    ThresholdEntry("DDR3 (new)", 2018, 22_400),
    ThresholdEntry("DDR4 (old)", 2018, 17_500),
    ThresholdEntry("DDR4 (new)", 2020, 10_000),
    ThresholdEntry("LPDDR4 (old)", 2019, 16_800),
    ThresholdEntry("LPDDR4 (new)", 2020, 4_800, 9_000),
]


def threshold_for(generation: str) -> int:
    """Look up the RH-Threshold of a DRAM generation."""
    for entry in RH_THRESHOLDS:
        if entry.generation == generation:
            return entry.threshold
    raise KeyError(f"unknown generation {generation!r}")


def reduction_factor() -> float:
    """The ~30x threshold reduction Figure 1a highlights (139K -> 4.8K)."""
    return RH_THRESHOLDS[0].threshold / RH_THRESHOLDS[-1].threshold
