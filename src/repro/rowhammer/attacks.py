"""Row-Hammer access-pattern generators (Sections II-C, II-E).

Each attack is an :class:`AttackPattern`: a named generator of aggressor
row activations for one refresh window, plus the victim rows it intends
to flip. Patterns:

- ``single_sided`` — hammer one aggressor; victims are its neighbours.
- ``double_sided`` — hammer both neighbours of a victim (the classic
  strongest pattern: the victim accumulates disturbance from both sides).
- ``many_sided`` — TRRespass [8]: hammer the intended aggressor pair
  *plus* many dummy rows, overflowing capacity-limited TRR tables so the
  real aggressors escape mitigation.
- ``half_double`` — Half-Double [9]: hammer rows at distance 2 from the
  victim; the mitigation's own victim-refreshes of the distance-1 rows
  act as activations that hammer the distance-1 rows' neighbour — the
  victim (Figure 1b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Sequence


@dataclass(frozen=True)
class AttackPattern:
    """A named aggressor-activation pattern.

    ``schedule(budget, ref_period)`` yields one aggressor row per
    activation slot; ``ref_period`` (activations between REF commands)
    lets REF-synchronized attacks like TRRespass time their tracker
    flushes.
    """

    name: str
    aggressors: Sequence[int]
    intended_victims: Sequence[int]
    schedule: Callable[[int, int], Iterator[int]]

    def activations(self, budget: int, ref_period: int = 166) -> Iterator[int]:
        """The attack's activation stream, capped at ``budget`` ACTs."""
        return self.schedule(budget, ref_period)


def _round_robin(rows: Sequence[int]) -> Callable[[int, int], Iterator[int]]:
    def gen(budget: int, ref_period: int) -> Iterator[int]:
        i = 0
        n = len(rows)
        for _ in range(budget):
            yield rows[i % n]
            i += 1

    return gen


def single_sided(aggressor: int) -> AttackPattern:
    """Hammer one row; its distance-1 neighbours are the victims."""
    return AttackPattern(
        name="single-sided",
        aggressors=(aggressor,),
        intended_victims=(aggressor - 1, aggressor + 1),
        schedule=_round_robin([aggressor]),
    )


def double_sided(victim: int) -> AttackPattern:
    """Hammer both neighbours of ``victim`` alternately."""
    rows = [victim - 1, victim + 1]
    return AttackPattern(
        name="double-sided",
        aggressors=tuple(rows),
        intended_victims=(victim,),
        schedule=_round_robin(rows),
    )


def many_sided(victim: int, n_dummies: int = 12, dummy_stride: int = 7,
               flush_burst: int = 6) -> AttackPattern:
    """TRRespass-style many-sided pattern (REF-synchronized).

    The true aggressor pair (around ``victim``) is hammered for most of
    each REF period; just before every REF command a burst of dummy-row
    activations flushes the recency-limited TRR tracker, so the rows the
    mitigation refreshes at REF time are the dummies' neighbours — never
    the real victim. (Real TRRespass discovers the REF cadence from
    timing; here the cadence is a parameter of the schedule.)
    """
    true_pair = [victim - 1, victim + 1]
    dummies = [victim + 10 + i * dummy_stride for i in range(n_dummies)]

    def gen(budget: int, ref_period: int) -> Iterator[int]:
        hammer_slots = max(2, ref_period - flush_burst)
        issued = 0
        dummy_index = 0
        while issued < budget:
            for i in range(min(hammer_slots, budget - issued)):
                yield true_pair[i % 2]
                issued += 1
            for _ in range(min(flush_burst, budget - issued)):
                yield dummies[dummy_index % n_dummies]
                dummy_index += 1
                issued += 1

    return AttackPattern(
        name="many-sided(trrespass)",
        aggressors=tuple(true_pair + dummies),
        intended_victims=(victim,),
        schedule=gen,
    )


def half_double(victim: int) -> AttackPattern:
    """Half-Double: distance-2 aggressors, mitigation-assisted.

    Hammering ``victim +/- 2`` triggers precise mitigations to keep
    refreshing ``victim +/- 1``; each of those refreshes is itself an
    activation adjacent to ``victim``. Direct distance-2 coupling alone is
    far too weak — the mitigation supplies the decisive hammering
    (Figure 1b).
    """
    far = [victim - 2, victim + 2]
    return AttackPattern(
        name="half-double",
        aggressors=tuple(far),
        intended_victims=(victim,),
        schedule=_round_robin(far),
    )
