"""Row-Hammer access-pattern generators (Sections II-C, II-E).

Each attack is an :class:`AttackPattern`: a named generator of aggressor
row activations for one refresh window, plus the victim rows it intends
to flip. Patterns:

- ``single_sided`` — hammer one aggressor; victims are its neighbours.
- ``double_sided`` — hammer both neighbours of a victim (the classic
  strongest pattern: the victim accumulates disturbance from both sides).
- ``many_sided`` — TRRespass [8]: hammer the intended aggressor pair
  *plus* many dummy rows, overflowing capacity-limited TRR tables so the
  real aggressors escape mitigation.
- ``half_double`` — Half-Double [9]: hammer rows at distance 2 from the
  victim; the mitigation's own victim-refreshes of the distance-1 rows
  act as activations that hammer the distance-1 rows' neighbour — the
  victim (Figure 1b).

All four factories — and the fuzzer's genomes, and the declarative
playbooks of :mod:`repro.rowhammer.playbook` — compile to the same
schedule representation: a list of :class:`SchedulePhase` (absolute
rows, per-phase read counts, REF gating) run by :func:`compile_schedule`.
Out-of-range rows are handled once, here, by the edge policy
(:func:`clip_rows` / :func:`clip_victims`): rows are clamped into the
bank (or dropped, or rejected), rows that would land on an intended
victim are dropped (activating the victim restores it), and intended
victims outside the bank are dropped — so ``double_sided(0)`` hammers
row 1 instead of the nonexistent row -1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.rowhammer.model import DEFAULT_REF_PERIOD

#: Out-of-range row handling of the schedule compiler:
#:
#: - ``"clamp"`` (default) — clamp rows into ``[0, n_rows)``; a row that
#:   (after clamping) coincides with an intended victim is dropped, and
#:   intended victims outside the bank are dropped.
#: - ``"drop"`` — out-of-range rows and victims are dropped outright
#:   (no clamping), victim collisions likewise.
#: - ``"error"`` — any out-of-range row or victim, or a row landing on a
#:   victim, raises :class:`ValueError`.
EDGE_POLICIES = ("clamp", "drop", "error")


@dataclass(frozen=True)
class AttackPattern:
    """A named aggressor-activation pattern.

    ``schedule(budget, ref_period)`` yields one aggressor row per
    activation slot; ``ref_period`` (activations between REF commands)
    lets REF-synchronized attacks like TRRespass time their tracker
    flushes.
    """

    name: str
    aggressors: Sequence[int]
    intended_victims: Sequence[int]
    schedule: Callable[[int, int], Iterator[int]]

    def activations(
        self, budget: int, ref_period: int = DEFAULT_REF_PERIOD
    ) -> Iterator[int]:
        """The attack's activation stream, capped at ``budget`` ACTs."""
        return self.schedule(budget, ref_period)


@dataclass(frozen=True)
class SchedulePhase:
    """One phase of a compiled schedule.

    ``rows`` are absolute, already weight-expanded rows cycled
    round-robin. ``reads`` is the phase's activation count per schedule
    cycle; ``None`` marks the *fill* phase, which takes whatever the REF
    period leaves after the explicit phases (REF gating: an explicit
    trailing phase lands just before each REF command). ``restart``
    re-anchors the phase's round-robin pointer at the start of every
    cycle instead of letting it persist across cycles.
    """

    rows: Tuple[int, ...]
    reads: Optional[int] = None
    restart: bool = False


def expand_weights(pairs: Sequence[Tuple[int, int]]) -> Tuple[int, ...]:
    """``(row, weight)`` pairs -> the flat row list a phase cycles over."""
    rows: List[int] = []
    for row, weight in pairs:
        if weight < 0:
            raise ValueError(f"row {row} has negative weight {weight}")
        rows.extend([row] * weight)
    if not rows:
        raise ValueError(
            "every row weight is 0: the phase would hammer nothing"
        )
    return tuple(rows)


def _in_range(row: int, n_rows: Optional[int]) -> bool:
    return row >= 0 and (n_rows is None or row < n_rows)


def clip_victims(
    victims: Sequence[int],
    n_rows: Optional[int] = None,
    policy: str = "clamp",
) -> Tuple[int, ...]:
    """Apply the edge policy to intended victims: out-of-range victims
    do not exist, so they are dropped (or rejected under ``"error"``)."""
    if policy not in EDGE_POLICIES:
        raise ValueError(
            f"unknown edge policy {policy!r}; known: {', '.join(EDGE_POLICIES)}"
        )
    kept: List[int] = []
    for victim in victims:
        if _in_range(victim, n_rows):
            kept.append(victim)
        elif policy == "error":
            raise ValueError(
                f"intended victim {victim} is outside the bank "
                f"(n_rows={n_rows})"
            )
    return tuple(kept)


def clip_rows(
    pairs: Sequence[Tuple[int, int]],
    victims: Sequence[int],
    n_rows: Optional[int] = None,
    policy: str = "clamp",
) -> List[Tuple[int, int]]:
    """Apply the edge policy to ``(row, weight)`` activation targets.

    Rows outside ``[0, n_rows)`` are clamped (or dropped / rejected per
    ``policy``); any row that then coincides with an intended victim is
    dropped — activating a victim restores its cells, so a schedule that
    touches it silently un-hammers itself.
    """
    if policy not in EDGE_POLICIES:
        raise ValueError(
            f"unknown edge policy {policy!r}; known: {', '.join(EDGE_POLICIES)}"
        )
    victim_set = set(victims)
    kept: List[Tuple[int, int]] = []
    for row, weight in pairs:
        if not _in_range(row, n_rows):
            if policy == "error":
                raise ValueError(
                    f"row {row} is outside the bank (n_rows={n_rows})"
                )
            if policy == "drop":
                continue
            row = 0 if row < 0 else min(row, n_rows - 1)
        if row in victim_set:
            if policy == "error":
                raise ValueError(
                    f"row {row} coincides with an intended victim — "
                    "activating the victim refreshes it"
                )
            continue
        kept.append((row, weight))
    return kept


def compile_schedule(
    phases: Sequence[SchedulePhase], min_fill: int = 1
) -> Callable[[int, int], Iterator[int]]:
    """Compile phases into a ``schedule(budget, ref_period)`` generator.

    Phases cycle in order until the budget is exhausted. With a fill
    phase (``reads=None``) the cycle is REF-synchronized: the fill phase
    hammers for ``max(min_fill, ref_period - explicit_reads)`` slots, so
    the explicit phases (tracker-flush bursts) land just before each REF
    command. Without one, phases simply repeat with their explicit
    counts. The generator is a pure function of ``(budget, ref_period)``
    — identical arguments replay a bit-identical activation stream.
    """
    if not phases:
        raise ValueError("a schedule needs at least one phase")
    if min_fill < 1:
        raise ValueError(f"min_fill must be >= 1, got {min_fill}")
    fill_phases = sum(1 for phase in phases if phase.reads is None)
    if fill_phases > 1:
        raise ValueError("at most one phase may fill the REF period (reads=None)")
    for phase in phases:
        if not phase.rows:
            raise ValueError("a schedule phase has no rows to hammer")
        if phase.reads is not None and phase.reads < 1:
            raise ValueError(f"phase reads must be >= 1, got {phase.reads}")
    explicit_total = sum(
        phase.reads for phase in phases if phase.reads is not None
    )
    compiled = tuple(phases)

    def schedule(budget: int, ref_period: int) -> Iterator[int]:
        pointers = [0] * len(compiled)
        issued = 0
        while issued < budget:
            for index, phase in enumerate(compiled):
                slots = (
                    phase.reads
                    if phase.reads is not None
                    else max(min_fill, ref_period - explicit_total)
                )
                if phase.restart:
                    pointers[index] = 0
                rows = phase.rows
                n = len(rows)
                pointer = pointers[index]
                for _ in range(min(slots, budget - issued)):
                    yield rows[pointer % n]
                    pointer += 1
                    issued += 1
                pointers[index] = pointer

    return schedule


def _round_robin(rows: Sequence[int]) -> Callable[[int, int], Iterator[int]]:
    return compile_schedule([SchedulePhase(rows=tuple(rows))])


def single_sided(
    aggressor: int,
    n_rows: Optional[int] = None,
    edge_policy: str = "clamp",
) -> AttackPattern:
    """Hammer one row; its distance-1 neighbours are the victims."""
    victims = clip_victims((aggressor - 1, aggressor + 1), n_rows, edge_policy)
    rows = clip_rows([(aggressor, 1)], victims, n_rows, edge_policy)
    return AttackPattern(
        name="single-sided",
        aggressors=tuple(row for row, _ in rows),
        intended_victims=victims,
        schedule=compile_schedule([SchedulePhase(rows=expand_weights(rows))]),
    )


def double_sided(
    victim: int,
    n_rows: Optional[int] = None,
    edge_policy: str = "clamp",
) -> AttackPattern:
    """Hammer both neighbours of ``victim`` alternately.

    At the bank edge (``victim`` 0 or ``n_rows - 1``) the missing
    neighbour is dropped by the edge policy and the pattern degrades to
    one-sided hammering of the remaining neighbour.
    """
    victims = clip_victims((victim,), n_rows, edge_policy)
    rows = clip_rows(
        [(victim - 1, 1), (victim + 1, 1)], victims, n_rows, edge_policy
    )
    return AttackPattern(
        name="double-sided",
        aggressors=tuple(row for row, _ in rows),
        intended_victims=victims,
        schedule=compile_schedule([SchedulePhase(rows=expand_weights(rows))]),
    )


def many_sided(victim: int, n_dummies: int = 12, dummy_stride: int = 7,
               flush_burst: int = 6, n_rows: Optional[int] = None,
               edge_policy: str = "clamp") -> AttackPattern:
    """TRRespass-style many-sided pattern (REF-synchronized).

    The true aggressor pair (around ``victim``) is hammered for most of
    each REF period; just before every REF command a burst of dummy-row
    activations flushes the recency-limited TRR tracker, so the rows the
    mitigation refreshes at REF time are the dummies' neighbours — never
    the real victim. (Real TRRespass discovers the REF cadence from
    timing; here the cadence is a parameter of the schedule.)
    """
    victims = clip_victims((victim,), n_rows, edge_policy)
    true_pair = clip_rows(
        [(victim - 1, 1), (victim + 1, 1)], victims, n_rows, edge_policy
    )
    dummies = clip_rows(
        [(victim + 10 + i * dummy_stride, 1) for i in range(n_dummies)],
        victims,
        n_rows,
        edge_policy,
    )
    return AttackPattern(
        name="many-sided(trrespass)",
        aggressors=tuple(row for row, _ in true_pair + dummies),
        intended_victims=victims,
        schedule=compile_schedule(
            [
                SchedulePhase(rows=expand_weights(true_pair), restart=True),
                SchedulePhase(rows=expand_weights(dummies), reads=flush_burst),
            ],
            min_fill=2,
        ),
    )


def half_double(
    victim: int,
    n_rows: Optional[int] = None,
    edge_policy: str = "clamp",
) -> AttackPattern:
    """Half-Double: distance-2 aggressors, mitigation-assisted.

    Hammering ``victim +/- 2`` triggers precise mitigations to keep
    refreshing ``victim +/- 1``; each of those refreshes is itself an
    activation adjacent to ``victim``. Direct distance-2 coupling alone is
    far too weak — the mitigation supplies the decisive hammering
    (Figure 1b).
    """
    victims = clip_victims((victim,), n_rows, edge_policy)
    rows = clip_rows(
        [(victim - 2, 1), (victim + 2, 1)], victims, n_rows, edge_policy
    )
    return AttackPattern(
        name="half-double",
        aggressors=tuple(row for row, _ in rows),
        intended_victims=victims,
        schedule=compile_schedule([SchedulePhase(rows=expand_weights(rows))]),
    )
