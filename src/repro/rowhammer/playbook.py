"""Declarative attack playbooks over the Row-Hammer substrate.

The litex-rowhammer-tester analogue for this codebase: instead of
hand-writing an :class:`AttackPattern` factory per attack, a *playbook*
is a plain JSON/dict document — victim and aggressor row specs, per-phase
read counts and weights, REF gating for tracker-flush bursts, a
data-inversion toggle, sweep axes over any field — that compiles through
the shared schedule compiler of :mod:`repro.rowhammer.attacks` and runs
as a campaign (attack variants x mitigations x the full scheme registry)
through :mod:`repro.campaign`.

Playbook format (``PlaybookSpec.from_dict``)::

    {
      "name": "double-sided-decoy",        # required, unique
      "summary": "one line for `playbook list`",
      "base_row": null,                    # victim anchor; null = campaign default
      "n_rows": null,                      # bank size; null = campaign default
      "edge_policy": "clamp",              # clamp | drop | error (attacks.EDGE_POLICIES)
      "min_fill": 1,                       # floor of the fill phase's slots
      "data_inversion": false,             # consume 0x5A-filled rows instead of 0xA5
      "victims": [0],                      # ints = offsets from base_row; {"row": N} pins
      "phases": [                          # one entry per SchedulePhase
        {"rows": [-1, 1], "restart": false},          # reads omitted -> fill phase
        {"rows": [{"offset": 10, "weight": 2},        # weighted + absolute rows
                  {"row": 100}],
         "reads": 6}                                  # REF-gated burst length
      ],
      "sweep": {"phases.1.reads": [2, 6, 10]}         # axes -> expanded variants
    }

Row entries are either a bare int (an offset from the resolved base row)
or a dict with exactly one of ``offset``/``row`` plus an optional
``weight``. Sweep axes address any field of the canonical dict by dotted
path (list indices are numeric segments); :func:`expand_spec` takes the
cartesian product over all axes and names each variant
``name[path=value,...]``.

Compilation (:func:`compile_playbook`) resolves rows against the base
row, applies the edge policy once — out-of-range rows clamped into the
bank, rows landing on an intended victim dropped, out-of-range victims
dropped (see ``attacks.clip_rows``) — and hands the phases to
``attacks.compile_schedule``, so a playbook's activation stream is a
pure function of its dict: same dict, same ``(budget, ref_period)``,
bit-identical stream.

The scenario library (:data:`SCENARIOS`) registers >= 8 named playbooks,
including two TRRespass-fuzzed presets frozen from genuine
:class:`PatternFuzzer` champions via ``PatternGenome.to_playbook``.
Batch execution (:func:`plan_playbook` / :func:`run_playbook`) walks
scenario variants x mitigations x every registered scheme through
``_PlaybookCampaign`` — fingerprint-keyed resume, group scheduling by
``(scenario, mitigation, seed)`` so one attack simulation serves all
schemes of a group, ``--store-url`` for the distributed service — and
:func:`report_playbook` renders the per-scenario DUE/SDC/breakthrough
matrix. CLI::

    python -m repro playbook list
    python -m repro playbook show many-sided
    python -m repro playbook lint
    python -m repro playbook run --scenario all --workers 2 --cache-dir .pb
"""

from __future__ import annotations

import itertools
import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.campaign import (
    Campaign,
    ProgressCallback,
    resolve_workers,
    run_campaign,
)
from repro.core import registry
from repro.rowhammer.attacks import (
    EDGE_POLICIES,
    AttackPattern,
    SchedulePhase,
    clip_rows,
    clip_victims,
    compile_schedule,
    expand_weights,
)
from repro.rowhammer.fuzzer import PatternGenome
from repro.rowhammer.integration import VictimArray
from repro.rowhammer.model import DisturbanceModel, RowHammerConfig
from repro.rowhammer.runner import AttackRunner
from repro.rowhammer.sweep import (
    DEFAULT_MITIGATIONS,
    SWEEP_KEY,
    SweepConfig,
    make_mitigation,
)

#: Bumped when playbook compilation or consumption semantics change;
#: invalidates every cached playbook point.
PLAYBOOK_VERSION = 1

#: Fill pattern of consumed victim rows; ``data_inversion`` flips it so
#: anti-cell rows (charged '0' cells) are exercised too.
FILL_BYTE = b"\xa5"
INVERTED_FILL_BYTE = b"\x5a"


# ---------------------------------------------------------------------------
# Spec dataclasses + dict round-trip
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RowSpec:
    """One row reference: an offset from the base row XOR an absolute row."""

    offset: Optional[int] = None
    row: Optional[int] = None
    weight: int = 1

    def __post_init__(self) -> None:
        if (self.offset is None) == (self.row is None):
            raise ValueError(
                "a row spec needs exactly one of 'offset' (relative to the "
                f"base row) or 'row' (absolute); got {self!r}"
            )
        if self.weight < 0:
            raise ValueError(f"row weight must be >= 0, got {self.weight}")

    def resolve(self, base_row: int) -> int:
        return self.row if self.row is not None else base_row + self.offset

    def to_dict(self) -> dict:
        payload: Dict[str, int] = {}
        if self.offset is not None:
            payload["offset"] = self.offset
        else:
            payload["row"] = self.row
        payload["weight"] = self.weight
        return payload


@dataclass(frozen=True)
class PhaseSpec:
    """One schedule phase: rows plus an optional REF-gated read count."""

    rows: Tuple[RowSpec, ...]
    reads: Optional[int] = None
    restart: bool = False

    def __post_init__(self) -> None:
        if not self.rows:
            raise ValueError("a phase needs at least one row")

    def to_dict(self) -> dict:
        return {
            "rows": [row.to_dict() for row in self.rows],
            "reads": self.reads,
            "restart": self.restart,
        }


@dataclass(frozen=True)
class PlaybookSpec:
    """A validated playbook document."""

    name: str
    phases: Tuple[PhaseSpec, ...]
    victims: Tuple[RowSpec, ...]
    base_row: Optional[int] = None
    n_rows: Optional[int] = None
    edge_policy: str = "clamp"
    min_fill: int = 1
    data_inversion: bool = False
    #: Sorted ``(dotted path, values)`` sweep axes.
    sweep: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()
    summary: str = ""

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError("a playbook needs a non-empty string name")
        if not self.phases:
            raise ValueError(f"playbook {self.name!r} has no phases")
        if not self.victims:
            raise ValueError(f"playbook {self.name!r} names no victims")
        if self.edge_policy not in EDGE_POLICIES:
            raise ValueError(
                f"playbook {self.name!r}: unknown edge policy "
                f"{self.edge_policy!r}; known: {', '.join(EDGE_POLICIES)}"
            )
        if self.min_fill < 1:
            raise ValueError(
                f"playbook {self.name!r}: min_fill must be >= 1, "
                f"got {self.min_fill}"
            )

    @property
    def fill_byte(self) -> bytes:
        return INVERTED_FILL_BYTE if self.data_inversion else FILL_BYTE

    # -- dict round-trip -----------------------------------------------------

    _FIELDS = (
        "name",
        "summary",
        "base_row",
        "n_rows",
        "edge_policy",
        "min_fill",
        "data_inversion",
        "victims",
        "phases",
        "sweep",
    )

    @classmethod
    def from_dict(cls, payload: Mapping) -> "PlaybookSpec":
        unknown = sorted(set(payload) - set(cls._FIELDS))
        if unknown:
            raise ValueError(
                f"unknown playbook field(s) {', '.join(unknown)}; "
                f"known: {', '.join(cls._FIELDS)}"
            )
        name = payload.get("name", "")
        phases = tuple(
            _phase_from_dict(name, index, entry)
            for index, entry in enumerate(payload.get("phases", ()))
        )
        victims = tuple(
            _row_from_entry(entry) for entry in payload.get("victims", ())
        )
        sweep_payload = payload.get("sweep", {})
        if not isinstance(sweep_payload, Mapping):
            raise ValueError(
                f"playbook {name!r}: 'sweep' must map dotted paths to "
                "value lists"
            )
        sweep = []
        for path in sorted(sweep_payload):
            values = sweep_payload[path]
            if not isinstance(values, (list, tuple)) or not values:
                raise ValueError(
                    f"playbook {name!r}: sweep axis {path!r} needs a "
                    "non-empty value list"
                )
            sweep.append((path, tuple(values)))
        return cls(
            name=name,
            phases=phases,
            victims=victims,
            base_row=payload.get("base_row"),
            n_rows=payload.get("n_rows"),
            edge_policy=payload.get("edge_policy", "clamp"),
            min_fill=payload.get("min_fill", 1),
            data_inversion=bool(payload.get("data_inversion", False)),
            sweep=tuple(sweep),
            summary=payload.get("summary", ""),
        )

    def to_dict(self) -> dict:
        """The canonical dict form: every field present, rows as dicts.

        Canonical means sweep paths always resolve and two specs compare
        equal iff their dicts do — the form fingerprints embed.
        """
        return {
            "name": self.name,
            "summary": self.summary,
            "base_row": self.base_row,
            "n_rows": self.n_rows,
            "edge_policy": self.edge_policy,
            "min_fill": self.min_fill,
            "data_inversion": self.data_inversion,
            "victims": [victim.to_dict() for victim in self.victims],
            "phases": [phase.to_dict() for phase in self.phases],
            "sweep": {path: list(values) for path, values in self.sweep},
        }


def _row_from_entry(entry) -> RowSpec:
    if isinstance(entry, bool):
        raise ValueError(f"row entry {entry!r} is not an int or mapping")
    if isinstance(entry, int):
        return RowSpec(offset=entry)
    if isinstance(entry, Mapping):
        unknown = sorted(set(entry) - {"offset", "row", "weight"})
        if unknown:
            raise ValueError(
                f"unknown row field(s) {', '.join(unknown)}; "
                "known: offset, row, weight"
            )
        return RowSpec(
            offset=entry.get("offset"),
            row=entry.get("row"),
            weight=entry.get("weight", 1),
        )
    raise ValueError(f"row entry {entry!r} is not an int or mapping")


def _phase_from_dict(name: str, index: int, entry) -> PhaseSpec:
    if not isinstance(entry, Mapping):
        raise ValueError(
            f"playbook {name!r}: phase {index} must be a mapping, "
            f"got {entry!r}"
        )
    unknown = sorted(set(entry) - {"rows", "reads", "restart"})
    if unknown:
        raise ValueError(
            f"playbook {name!r}: unknown phase field(s) "
            f"{', '.join(unknown)}; known: rows, reads, restart"
        )
    return PhaseSpec(
        rows=tuple(_row_from_entry(row) for row in entry.get("rows", ())),
        reads=entry.get("reads"),
        restart=bool(entry.get("restart", False)),
    )


# ---------------------------------------------------------------------------
# Compilation + sweep-axis expansion
# ---------------------------------------------------------------------------


def compile_playbook(
    spec: PlaybookSpec,
    base_row: Optional[int] = None,
    n_rows: Optional[int] = None,
) -> AttackPattern:
    """Compile a playbook into an :class:`AttackPattern`.

    ``base_row``/``n_rows`` are campaign defaults: the spec's own fields
    win when set. ``n_rows=None`` (both places) leaves the bank unbounded
    above — only the ``row >= 0`` edge applies.
    """
    base = spec.base_row if spec.base_row is not None else base_row
    if base is None:
        raise ValueError(
            f"playbook {spec.name!r} pins no base_row; pass one "
            "(the campaign's victim_row)"
        )
    bank = spec.n_rows if spec.n_rows is not None else n_rows
    victims = clip_victims(
        [victim.resolve(base) for victim in spec.victims],
        bank,
        spec.edge_policy,
    )
    phases: List[SchedulePhase] = []
    aggressors: List[int] = []
    for index, phase in enumerate(spec.phases):
        pairs = clip_rows(
            [(row.resolve(base), row.weight) for row in phase.rows],
            victims,
            bank,
            spec.edge_policy,
        )
        try:
            rows = expand_weights(pairs)
        except ValueError as exc:
            raise ValueError(
                f"playbook {spec.name!r}: phase {index} is empty after the "
                f"{spec.edge_policy!r} edge policy ({exc})"
            ) from None
        for row in rows:
            if row not in aggressors:
                aggressors.append(row)
        phases.append(
            SchedulePhase(rows=rows, reads=phase.reads, restart=phase.restart)
        )
    return AttackPattern(
        name=spec.name,
        aggressors=tuple(aggressors),
        intended_victims=victims,
        schedule=compile_schedule(phases, min_fill=spec.min_fill),
    )


def _set_path(payload: dict, path: str, value) -> None:
    """Set a dotted path inside the canonical dict (lists by index)."""
    segments = path.split(".")
    cursor = payload
    walked = []
    for segment in segments[:-1]:
        walked.append(segment)
        if isinstance(cursor, list):
            try:
                cursor = cursor[int(segment)]
            except (ValueError, IndexError):
                raise ValueError(
                    f"sweep path {path!r}: no list index {segment!r} "
                    f"at {'.'.join(walked)}"
                ) from None
        elif isinstance(cursor, dict):
            if segment not in cursor:
                raise ValueError(
                    f"sweep path {path!r}: no field {segment!r} "
                    f"at {'.'.join(walked)}"
                )
            cursor = cursor[segment]
        else:
            raise ValueError(
                f"sweep path {path!r}: {'.'.join(walked[:-1])} is not "
                "a container"
            )
    leaf = segments[-1]
    if isinstance(cursor, list):
        try:
            cursor[int(leaf)] = value
        except (ValueError, IndexError):
            raise ValueError(
                f"sweep path {path!r}: no list index {leaf!r}"
            ) from None
    elif isinstance(cursor, dict):
        cursor[leaf] = value
    else:
        raise ValueError(f"sweep path {path!r} does not address a field")


def expand_spec(spec: PlaybookSpec) -> List[PlaybookSpec]:
    """Expand sweep axes into concrete variants (axes in sorted order).

    A sweep-free playbook expands to itself; axes expand to the cartesian
    product, each variant named ``name[path=value,...]`` and re-validated
    through :meth:`PlaybookSpec.from_dict`.
    """
    if not spec.sweep:
        return [spec]
    paths = [path for path, _ in spec.sweep]
    variants: List[PlaybookSpec] = []
    for combo in itertools.product(*(values for _, values in spec.sweep)):
        payload = spec.to_dict()
        payload["sweep"] = {}
        for path, value in zip(paths, combo):
            _set_path(payload, path, value)
        payload["name"] = "{}[{}]".format(
            spec.name,
            ",".join(f"{path}={value}" for path, value in zip(paths, combo)),
        )
        variants.append(PlaybookSpec.from_dict(payload))
    return variants


# ---------------------------------------------------------------------------
# Scenario library
# ---------------------------------------------------------------------------

#: TRRespass-fuzzed presets: champions of genuine :class:`PatternFuzzer`
#: runs in the campaign regime (rh_threshold=1200, budget=120k,
#: victim=64), frozen so the library stays deterministic. fuzzed-trr is
#: the seed-10 winner against TRRMitigation(table_size=4); fuzzed-para
#: the seed-7 winner against PARA(0.002).
_FUZZED_TRR = PatternGenome(
    aggressors=((1, 4), (-1, 2)),
    flush_rows=(30, 14, 25, 57, 33, 12, 36, 18, 48),
    flush_burst=4,
)
_FUZZED_PARA = PatternGenome(aggressors=((1, 3),), flush_rows=(), flush_burst=0)

#: The named scenario library, in registration order.
SCENARIOS: Dict[str, PlaybookSpec] = {}


def register_scenario(payload: Mapping) -> PlaybookSpec:
    """Validate and register a playbook under its name (names are unique)."""
    spec = PlaybookSpec.from_dict(payload)
    if spec.name in SCENARIOS:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    SCENARIOS[spec.name] = spec
    return spec


def scenario(name: str) -> PlaybookSpec:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; known: {', '.join(SCENARIOS)}"
        ) from None


_LIBRARY: Tuple[dict, ...] = (
    {
        "name": "one-location",
        "summary": "hammer a single aggressor; both neighbours are victims",
        "victims": [-2, 0],
        "phases": [{"rows": [-1]}],
    },
    {
        "name": "single-sided",
        "summary": "two non-adjacent aggressors hammered alternately",
        "victims": [-2, 0, 19, 21],
        "phases": [{"rows": [-1, 20]}],
    },
    {
        "name": "double-sided",
        "summary": "the classic strongest pattern: both victim neighbours",
        "victims": [0],
        "phases": [{"rows": [-1, 1]}],
    },
    {
        "name": "double-sided-decoy",
        "summary": "double-sided diluted with low-weight decoy rows",
        "victims": [0],
        "phases": [
            {
                "rows": [
                    {"offset": -1, "weight": 4},
                    {"offset": 1, "weight": 4},
                    {"offset": 15, "weight": 1},
                    {"offset": 22, "weight": 1},
                ]
            }
        ],
    },
    {
        "name": "many-sided",
        "summary": "TRRespass: aggressor pair + REF-gated dummy flush burst",
        "victims": [0],
        "min_fill": 2,
        "phases": [
            {"rows": [-1, 1], "restart": True},
            {
                "rows": [10 + 4 * i for i in range(12)],
                "reads": 6,
            },
        ],
    },
    {
        "name": "half-double",
        "summary": "distance-2 aggressors; the mitigation supplies the hammer",
        "victims": [0],
        "phases": [{"rows": [-2, 2]}],
    },
    {
        "name": "edge-double",
        "summary": "double-sided at row 0: the clamp policy degrades it",
        "base_row": 0,
        "victims": [0],
        "phases": [{"rows": [-1, 1]}],
    },
    _FUZZED_TRR.to_playbook(
        "fuzzed-trr",
        summary="frozen fuzzer champion vs TRR (seed 10, 25 trials)",
    ),
    _FUZZED_PARA.to_playbook(
        "fuzzed-para",
        summary="frozen fuzzer champion vs PARA (seed 7, 30 trials)",
    ),
    {
        "name": "trrespass-burst-sweep",
        "summary": "many-sided swept over the tracker-flush burst length",
        "victims": [0],
        "min_fill": 2,
        "phases": [
            {"rows": [-1, 1], "restart": True},
            {
                "rows": [10 + 4 * i for i in range(12)],
                "reads": 6,
            },
        ],
        "sweep": {"phases.1.reads": [2, 6, 10]},
    },
)

for _payload in _LIBRARY:
    register_scenario(_payload)
del _payload


# ---------------------------------------------------------------------------
# Campaign execution
# ---------------------------------------------------------------------------


@dataclass
class PlaybookConfig(SweepConfig):
    """Shared knobs of one playbook campaign (extends the sweep regime)."""

    #: Bank size the edge policy clamps against (model default).
    n_rows: int = 128


@dataclass(frozen=True)
class PlaybookCell:
    """One playbook point: scenario variant x mitigation x scheme x seed."""

    index: int
    scenario: str
    variant: str
    mitigation: str
    scheme: str
    seed: int

    @property
    def key(self) -> Tuple[str, str, str, int]:
        return (self.variant, self.mitigation, self.scheme, self.seed)


@dataclass
class PlaybookOutcome:
    """What one playbook point observed, attack side and consumption side."""

    scenario: str
    variant: str
    mitigation: str
    scheme: str
    seed: int
    total_flips: int = 0
    intended_flips: int = 0
    mitigation_refreshes: int = 0
    blocked_activations: int = 0
    lines_read: int = 0
    corrected: int = 0
    detected_ue: int = 0
    silent_corruptions: int = 0

    @property
    def broke_through(self) -> bool:
        return self.intended_flips > 0

    @property
    def security_risk(self) -> bool:
        return self.silent_corruptions > 0

    def to_json(self) -> dict:
        return asdict(self)

    @classmethod
    def from_json(cls, payload: dict) -> "PlaybookOutcome":
        return cls(**payload)


def _resolve_variants(
    scenario_name: str, extra_specs: Optional[Mapping[str, dict]] = None
) -> Dict[str, PlaybookSpec]:
    """A scenario's expanded variants, name -> spec (expansion order)."""
    if extra_specs and scenario_name in extra_specs:
        spec = PlaybookSpec.from_dict(extra_specs[scenario_name])
    else:
        spec = scenario(scenario_name)
    return {variant.name: variant for variant in expand_spec(spec)}


class _PlaybookCampaign(Campaign):
    """Playbook execution as a :class:`repro.campaign.Campaign`.

    The grouping mirrors the hammer sweep: the attack simulation is
    organization-independent, so grouping by ``(scenario, mitigation,
    seed)`` lets the per-process memo serve every scheme of one variant
    from a single simulation. ``extra_specs`` carries file-loaded
    playbooks by value so pool/steal workers (which only receive the
    pickled campaign) can resolve them.
    """

    name = "playbook"

    def __init__(
        self,
        config: PlaybookConfig,
        extra_specs: Optional[Mapping[str, dict]] = None,
    ):
        self.config = config
        self.extra_specs = dict(extra_specs or {})

    def _spec(self, cell: PlaybookCell) -> PlaybookSpec:
        variants = _resolve_variants(cell.scenario, self.extra_specs)
        try:
            return variants[cell.variant]
        except KeyError:
            raise ValueError(
                f"scenario {cell.scenario!r} has no variant "
                f"{cell.variant!r}; known: {', '.join(variants)}"
            ) from None

    def fingerprint(self, cell: PlaybookCell) -> dict:
        return {
            "campaign": self.name,
            "playbook_version": PLAYBOOK_VERSION,
            "scenario": cell.scenario,
            "spec": self._spec(cell).to_dict(),
            "mitigation": cell.mitigation,
            "scheme": cell.scheme,
            "seed": cell.seed,
            "config": asdict(self.config),
        }

    def group_key(self, cell: PlaybookCell):
        return (cell.scenario, cell.mitigation, cell.seed)

    def run_item(self, cell: PlaybookCell) -> PlaybookOutcome:
        spec = self._spec(cell)
        result, rh_config = _memoized_attack(spec, cell, self.config)
        controller = registry.create(cell.scheme, key=SWEEP_KEY)
        array = VictimArray(
            controller,
            bits_per_row=rh_config.bits_per_row,
            base_address=cell.seed << 24,
            fill_byte=spec.fill_byte,
        )
        for row in result.final_flip_bits:
            array.populate_row(row)
        array.apply_flips(result.final_flip_bits)
        consumed = array.read_all(cell.scheme)
        return PlaybookOutcome(
            scenario=cell.scenario,
            variant=cell.variant,
            mitigation=cell.mitigation,
            scheme=cell.scheme,
            seed=cell.seed,
            total_flips=result.total_flips,
            intended_flips=result.intended_flips,
            mitigation_refreshes=result.mitigation_refreshes,
            blocked_activations=result.blocked_activations,
            lines_read=consumed.lines_read,
            corrected=consumed.corrected,
            detected_ue=consumed.detected_ue,
            silent_corruptions=consumed.silent_corruptions,
        )

    def serialize_result(self, cell, outcome: PlaybookOutcome):
        return outcome.to_json()

    def deserialize_result(self, cell, payload) -> PlaybookOutcome:
        return PlaybookOutcome.from_json(payload)

    def result_failures(self, outcome: PlaybookOutcome) -> int:
        return outcome.silent_corruptions


def _attack_result(spec: PlaybookSpec, cell: PlaybookCell, config: PlaybookConfig):
    """Simulate the attack half of a point (organization-independent)."""
    rh_config = RowHammerConfig(
        n_rows=config.n_rows,
        rh_threshold=config.rh_threshold,
        seed=cell.seed,
        weak_cells_per_row=config.weak_cells_per_row,
        flips_per_crossing=config.flips_per_crossing,
    )
    runner = AttackRunner(
        DisturbanceModel(rh_config),
        make_mitigation(cell.mitigation, config, cell.seed),
    )
    pattern = compile_playbook(
        spec, base_row=config.victim_row, n_rows=config.n_rows
    )
    return (
        runner.run(pattern, windows=config.windows, budget=config.budget),
        rh_config,
    )


#: Per-process memo of the organization-independent attack simulation.
#: The key embeds the variant's full canonical dict (not just its name)
#: so redefined file-loaded playbooks never collide across campaigns in
#: one process.
_PLAYBOOK_MEMO: dict = {}


def _memoized_attack(spec: PlaybookSpec, cell: PlaybookCell, config: PlaybookConfig):
    key = (
        json.dumps(spec.to_dict(), sort_keys=True),
        cell.mitigation,
        cell.seed,
        tuple(sorted(asdict(config).items())),
    )
    if key not in _PLAYBOOK_MEMO:
        _PLAYBOOK_MEMO[key] = _attack_result(spec, cell, config)
    return _PLAYBOOK_MEMO[key]


def plan_playbook(
    scenarios: Optional[Sequence[str]] = None,
    mitigations: Sequence[str] = DEFAULT_MITIGATIONS,
    schemes: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = (3,),
    config: Optional[PlaybookConfig] = None,
    extra_playbooks: Sequence[Mapping] = (),
) -> List[PlaybookCell]:
    """The full playbook grid; validates and compiles everything eagerly.

    ``scenarios=None`` takes the whole library plus every entry of
    ``extra_playbooks`` (ad-hoc dicts, e.g. loaded from ``--file``);
    ``schemes=None`` takes the full registry — the paper's grid spans
    all 8 organizations.
    """
    config = config or PlaybookConfig()
    extras = {payload["name"]: dict(payload) for payload in extra_playbooks}
    for name in extras:
        if name in SCENARIOS:
            raise ValueError(
                f"extra playbook {name!r} shadows a library scenario"
            )
    names = (
        list(scenarios)
        if scenarios is not None
        else list(SCENARIOS) + sorted(extras)
    )
    scheme_names = list(schemes) if schemes is not None else registry.names()
    for name in scheme_names:
        registry.scheme(name)  # unknown names raise with the full list
    for mitigation in mitigations:
        make_mitigation(mitigation, config, seeds[0] if seeds else 0)
    cells: List[PlaybookCell] = []
    for seed in seeds:
        for name in names:
            variants = _resolve_variants(name, extras)
            for variant_name, variant in variants.items():
                compile_playbook(
                    variant, base_row=config.victim_row, n_rows=config.n_rows
                )
                for mitigation in mitigations:
                    for scheme_name in scheme_names:
                        cells.append(
                            PlaybookCell(
                                index=len(cells),
                                scenario=name,
                                variant=variant_name,
                                mitigation=mitigation,
                                scheme=scheme_name,
                                seed=seed,
                            )
                        )
    return cells


def run_playbook(
    cells: Sequence[PlaybookCell],
    config: Optional[PlaybookConfig] = None,
    *,
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    store=None,
    progress: Optional[ProgressCallback] = None,
    extra_playbooks: Sequence[Mapping] = (),
) -> Dict[Tuple[str, str, str, int], PlaybookOutcome]:
    """Run every playbook point; results keyed by :attr:`PlaybookCell.key`.

    Inherits the full campaign contract: bit-identical for any worker
    count, fingerprint-verified resume from ``cache_dir``, and ``store``
    (e.g. a :class:`repro.campaign.RemoteResultStore`) for the
    distributed service.
    """
    config = config or PlaybookConfig()
    workers = resolve_workers(workers)
    extras = {payload["name"]: dict(payload) for payload in extra_playbooks}
    results = run_campaign(
        _PlaybookCampaign(config, extras),
        cells,
        workers=workers,
        store_dir=cache_dir,
        store=store,
        progress=progress,
    )
    return {cell.key: results[cell.index] for cell in cells}


# ---------------------------------------------------------------------------
# Reporting + lint
# ---------------------------------------------------------------------------


def _verdict(outcome: PlaybookOutcome) -> str:
    if outcome.silent_corruptions > 0:
        return "RISK"
    if outcome.detected_ue > 0:
        return "DUE"
    if outcome.corrected > 0:
        return "corr"
    return "held" if outcome.broke_through else "-"


def report_playbook(
    outcomes: Mapping[Tuple[str, str, str, int], PlaybookOutcome]
) -> str:
    """The per-scenario DUE/SDC/breakthrough matrix across all schemes.

    One row per (variant, mitigation, seed); one column per scheme with
    the consumption verdict — ``-`` (no breakthrough), ``held``
    (breakthrough fully absorbed), ``corr`` (corrected), ``DUE``
    (detected uncorrectable), ``RISK`` (silent corruption). A
    breakthrough summary follows: which mitigations each scenario broke,
    and which schemes let any breakthrough through silently.
    """
    from repro.experiments.reporting import format_table, print_banner

    schemes = sorted({key[2] for key in outcomes})
    labels = {name: f"S{i + 1}" for i, name in enumerate(schemes)}
    by_row: Dict[Tuple[str, str, int], Dict[str, PlaybookOutcome]] = {}
    for (variant, mitigation, scheme_name, seed), outcome in outcomes.items():
        by_row.setdefault((variant, mitigation, seed), {})[scheme_name] = outcome
    lines: List[str] = []
    print_banner("Attack playbook: consumption verdict by scheme")
    for name in schemes:
        lines.append(f"{labels[name]} = {name}")
    rows = []
    for variant, mitigation, seed in sorted(by_row):
        per_scheme = by_row[(variant, mitigation, seed)]
        sample = next(iter(per_scheme.values()))
        rows.append(
            [variant, mitigation, seed, sample.intended_flips,
             sample.mitigation_refreshes]
            + [
                _verdict(per_scheme[name]) if name in per_scheme else ""
                for name in schemes
            ]
        )
    lines.append(
        format_table(
            ["Scenario", "Mitigation", "Seed", "Flips", "Refr"]
            + [labels[name] for name in schemes],
            rows,
        )
    )
    broke: Dict[str, List[str]] = {}
    risky: Dict[str, List[str]] = {}
    for (variant, mitigation, _seed), per_scheme in sorted(by_row.items()):
        sample = next(iter(per_scheme.values()))
        if sample.broke_through and mitigation not in broke.setdefault(variant, []):
            broke[variant].append(mitigation)
        for name in schemes:
            outcome = per_scheme.get(name)
            if (
                outcome is not None
                and outcome.security_risk
                and name not in risky.setdefault(variant, [])
            ):
                risky[variant].append(name)
    lines.append("")
    lines.append("Breakthroughs:")
    for variant in sorted(by_row and {key[0] for key in by_row}):
        mitigations = broke.get(variant, [])
        schemes_at_risk = risky.get(variant, [])
        lines.append(
            "  {}: broke [{}]; silent corruption in [{}]".format(
                variant,
                ", ".join(mitigations) if mitigations else "none",
                ", ".join(schemes_at_risk) if schemes_at_risk else "none",
            )
        )
    text = "\n".join(lines)
    print(text)
    return text


def lint_scenarios(config: Optional[PlaybookConfig] = None) -> List[str]:
    """Compile every library scenario (all variants); raises on errors.

    Returns one summary line per scenario — the CI lint step's output.
    """
    config = config or PlaybookConfig()
    lines = []
    for name in SCENARIOS:
        variants = _resolve_variants(name)
        n_aggressors = []
        for variant in variants.values():
            pattern = compile_playbook(
                variant, base_row=config.victim_row, n_rows=config.n_rows
            )
            n_aggressors.append(len(pattern.aggressors))
        lines.append(
            f"{name}: {len(variants)} variant(s), "
            f"aggressor rows {sorted(set(n_aggressors))} — OK"
        )
    return lines
