"""BlockHammer-style throttling mitigation (Section VIII, [47]).

BlockHammer takes a different tack from refresh-based mitigations: it
*rate-limits* activations. Counting Bloom filters track per-row activation
counts within a refresh window; rows whose estimated count crosses a
blacklist threshold get their further activations delayed so that no row
can exceed the RH-Threshold within the window — a guarantee that holds
regardless of the access pattern (Half-Double's distance-2 refreshes
never happen because there are no victim refreshes at all).

The paper's two criticisms are both measurable here:

- the delay can be enormous (at low thresholds a blacklisted row's access
  can take >125us — ``worst_case_delay_ns``), and
- the guarantee is still *threshold-relative*: a module whose real
  threshold is below the design point flips before the blacklist fires
  (the same Table I drift that breaks every design-point scheme).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.rowhammer.mitigations import Mitigation
from repro.utils.rng import derive_seed

#: tRC in nanoseconds: minimum spacing of activations to one bank.
TRC_NS = 46.0
#: Refresh window in nanoseconds.
WINDOW_NS = 64_000_000.0


class CountingBloomFilter:
    """A counting Bloom filter over row numbers.

    ``estimate`` returns the minimum counter across the k hash positions —
    an overestimate of the true insertion count (never an underestimate),
    which is the conservative direction for a blacklist.
    """

    def __init__(self, n_counters: int = 1024, n_hashes: int = 4, seed: int = 0):
        if n_counters < 1 or n_hashes < 1:
            raise ValueError("need at least one counter and one hash")
        self.n_counters = n_counters
        self.n_hashes = n_hashes
        self._counters = [0] * n_counters
        self._salts = [derive_seed(seed, 0xB10, i) for i in range(n_hashes)]

    def _positions(self, row: int) -> List[int]:
        return [
            (derive_seed(salt, row) % self.n_counters) for salt in self._salts
        ]

    def insert(self, row: int) -> None:
        for pos in self._positions(row):
            self._counters[pos] += 1

    def estimate(self, row: int) -> int:
        return min(self._counters[pos] for pos in self._positions(row))

    def clear(self) -> None:
        self._counters = [0] * self.n_counters


@dataclass
class ThrottleDecision:
    allowed: bool
    delay_ns: float = 0.0


class BlockHammerMitigation(Mitigation):
    """Bloom-filter blacklisting with activation throttling.

    ``design_threshold`` sizes the limits: a row is blacklisted (paced)
    after ``design_threshold / 4`` estimated activations in the current
    window and hard-capped just below ``design_threshold / 2`` — the cap
    is half the threshold because a double-sided victim accumulates
    disturbance from *both* neighbours, so each must individually stay
    below half for the sum to stay below the threshold.
    """

    name = "blockhammer"

    def __init__(
        self,
        design_threshold: int = 4800,
        n_counters: int = 1024,
        n_hashes: int = 4,
        seed: int = 0,
    ):
        self.design_threshold = design_threshold
        self.blacklist_count = max(1, design_threshold // 4)
        self.activation_cap = max(1, design_threshold // 2 - 1)
        self._filter = CountingBloomFilter(n_counters, n_hashes, seed)
        self.blocked = 0
        self.total = 0

    # -- throttling interface (consumed by AttackRunner) -------------------------

    def permits(self, row: int) -> ThrottleDecision:
        """Decide whether this activation proceeds now.

        Blacklisted rows are allowed only at the throttled pace: the
        remaining activation quota spread over the remaining window. In
        the runner's discrete model a quota-exhausted row is simply
        blocked for the rest of the window.
        """
        self.total += 1
        estimate = self._filter.estimate(row)
        if estimate >= self.activation_cap:
            self.blocked += 1
            return ThrottleDecision(False, self.worst_case_delay_ns())
        self._filter.insert(row)
        if estimate >= self.blacklist_count:
            # Blacklisted but within quota: delayed, not denied.
            return ThrottleDecision(True, self.throttle_delay_ns())
        return ThrottleDecision(True, 0.0)

    def on_activate(self, row: int) -> List[int]:
        return []  # BlockHammer never issues victim refreshes

    def on_window_end(self) -> None:
        self._filter.clear()

    # -- the latency criticism (Section VIII) ---------------------------------------

    def throttle_delay_ns(self) -> float:
        """Pacing delay for a blacklisted row's activations.

        A blacklisted row has ``design_threshold/2`` quota left for (in
        the worst case) the whole window: its activations must be spaced
        ``WINDOW_NS / (design_threshold/2)`` apart.
        """
        return WINDOW_NS / max(1, self.design_threshold // 2)

    def worst_case_delay_ns(self) -> float:
        """Delay when the quota is exhausted: wait for the next window."""
        return self.throttle_delay_ns()

    @property
    def blocked_fraction(self) -> float:
        return self.blocked / self.total if self.total else 0.0
