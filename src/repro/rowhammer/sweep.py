"""Row-Hammer attack-sweep campaign: attacks x mitigations x organizations.

The third consumer of the generic campaign core (:mod:`repro.campaign`),
alongside the Monte-Carlo shards of :mod:`repro.faultsim.parallel` and
the performance cells of :mod:`repro.perf.campaign`. One sweep point
answers the paper's end-to-end question for a single combination: run an
attack pattern against a mitigation (:class:`AttackRunner`), wire any
breakthrough bit-flips into one memory organization's data path
(:class:`VictimArray`), and classify what software would have consumed —
corrected, detected-UE, or silently corrupted (the security risk
SafeGuard eliminates; Figure 1c generalized across the attack surface).

Every point is deterministic in its fingerprint (attack, mitigation,
scheme, seed, disturbance-model knobs), so the sweep inherits the full
campaign contract: worker-count-invariant results, a resumable
fingerprint-verified cache, crash retry, and progress snapshots. Points
are grouped by ``(attack, mitigation, seed)`` — the attack simulation is
organization-independent, so every scheme of one attack instance runs in
the worker that already simulated it (a per-process memo mirrors the
perf engine's shared content pass).

CLI::

    python -m repro hammer-sweep --workers 4 --cache-dir .sweep
    python -m repro campaign-status .sweep

Worker-count resolution: explicit argument > ``REPRO_WORKERS`` > 1 (the
sweep has no engine-specific variable; it is born on the generic one).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign import (
    Campaign,
    ProgressCallback,
    resolve_workers,
    run_campaign,
)
from repro.core import registry
from repro.rowhammer.attacks import (
    AttackPattern,
    double_sided,
    half_double,
    many_sided,
    single_sided,
)
from repro.rowhammer.integration import VictimArray
from repro.rowhammer.mitigations import (
    GrapheneMitigation,
    Mitigation,
    NoMitigation,
    PARA,
    TRRMitigation,
)
from repro.rowhammer.model import DisturbanceModel, RowHammerConfig
from repro.rowhammer.runner import AttackRunner
from repro.utils.rng import derive_seed

#: Bumped when the sweep's science changes (attack wiring, consumption
#: classification, disturbance model defaults routed through
#: :class:`SweepConfig`); invalidates every cached point.
SWEEP_VERSION = 1

#: MAC key used for the sweep's controllers (any fixed key works: the
#: sweep studies corruption consumption, not key secrecy).
SWEEP_KEY = b"hammer-sweep-key"

#: Attack names -> pattern factory (victim row -> :class:`AttackPattern`).
ATTACKS = {
    "single-sided": single_sided,
    "double-sided": double_sided,
    "many-sided": many_sided,
    "half-double": half_double,
}

#: Default sweep grid (attack names x mitigation names).
DEFAULT_ATTACKS = tuple(ATTACKS)
DEFAULT_MITIGATIONS = ("none", "para", "trr", "graphene")
DEFAULT_SCHEMES = ("secded", "safeguard-secded", "chipkill", "safeguard-chipkill")


@dataclass
class SweepConfig:
    """Shared knobs of one sweep campaign (identical for every point)."""

    #: Disturbance threshold; low enough that interactive budgets break
    #: weak mitigations (same regime as the fig1b/fig1c experiments).
    rh_threshold: int = 1200
    #: Activation budget per refresh window.
    budget: int = 120_000
    #: Refresh windows per attack run.
    windows: int = 1
    #: The row the attack aims at.
    victim_row: int = 64
    #: Disturbance-model overrides (escalated flips, as in fig1c, so
    #: breakthroughs produce multi-bit words that separate the schemes).
    weak_cells_per_row: int = 64
    flips_per_crossing: float = 6.0


def make_mitigation(name: str, config: SweepConfig, seed: int) -> Mitigation:
    """Instantiate a mitigation by name, sized for the sweep's regime."""
    if name == "none":
        return NoMitigation()
    if name == "para":
        # PARA's coin flips are part of the point's science: seed them
        # from the point seed so the result is deterministic.
        return PARA(probability=0.002, seed=derive_seed(seed, 0x9A7A))
    if name == "trr":
        return TRRMitigation(table_size=4)
    if name == "graphene":
        return GrapheneMitigation(
            design_threshold=config.rh_threshold,
            window_activations=config.budget,
        )
    raise ValueError(
        f"unknown mitigation {name!r}; known: {', '.join(DEFAULT_MITIGATIONS)}"
    )


def _make_attack(name: str, victim_row: int) -> AttackPattern:
    try:
        factory = ATTACKS[name]
    except KeyError:
        raise ValueError(
            f"unknown attack {name!r}; known: {', '.join(ATTACKS)}"
        ) from None
    return factory(victim_row)


@dataclass(frozen=True)
class SweepCell:
    """One sweep point: attack x mitigation x organization x seed."""

    index: int
    attack: str
    mitigation: str
    scheme: str
    seed: int

    @property
    def key(self) -> Tuple[str, str, str, int]:
        return (self.attack, self.mitigation, self.scheme, self.seed)


@dataclass
class SweepOutcome:
    """What one sweep point observed, end to end."""

    attack: str
    mitigation: str
    scheme: str
    seed: int
    #: Attack-side: bits flipped anywhere / in the intended victims, and
    #: the mitigation's victim-refresh count.
    total_flips: int = 0
    intended_flips: int = 0
    mitigation_refreshes: int = 0
    #: Consumption-side: the controller's own classification of reads.
    lines_read: int = 0
    corrected: int = 0
    detected_ue: int = 0
    silent_corruptions: int = 0

    @property
    def broke_through(self) -> bool:
        return self.intended_flips > 0

    @property
    def security_risk(self) -> bool:
        return self.silent_corruptions > 0

    def to_json(self) -> dict:
        return asdict(self)

    @classmethod
    def from_json(cls, payload: dict) -> "SweepOutcome":
        return cls(**payload)


def plan_sweep(
    attacks: Sequence[str] = DEFAULT_ATTACKS,
    mitigations: Sequence[str] = DEFAULT_MITIGATIONS,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    seeds: Sequence[int] = (3,),
) -> List[SweepCell]:
    """The full sweep grid; validates every name eagerly."""
    for attack in attacks:
        _make_attack(attack, 0)
    for name in schemes:
        registry.scheme(name)  # unknown names raise with the full list
    cells: List[SweepCell] = []
    for seed in seeds:
        for attack in attacks:
            for mitigation in mitigations:
                make_mitigation(mitigation, SweepConfig(), seed)
                for scheme in schemes:
                    cells.append(
                        SweepCell(
                            index=len(cells),
                            attack=attack,
                            mitigation=mitigation,
                            scheme=scheme,
                            seed=seed,
                        )
                    )
    return cells


def _attack_result(cell: SweepCell, config: SweepConfig):
    """Simulate the attack half of a point (organization-independent)."""
    rh_config = RowHammerConfig(
        rh_threshold=config.rh_threshold,
        seed=cell.seed,
        weak_cells_per_row=config.weak_cells_per_row,
        flips_per_crossing=config.flips_per_crossing,
    )
    runner = AttackRunner(
        DisturbanceModel(rh_config),
        make_mitigation(cell.mitigation, config, cell.seed),
    )
    return (
        runner.run(
            _make_attack(cell.attack, config.victim_row),
            windows=config.windows,
            budget=config.budget,
        ),
        rh_config,
    )


class _SweepCampaign(Campaign):
    """The attack sweep as a :class:`repro.campaign.Campaign`.

    Grouping by ``(attack, mitigation, seed)`` lets the per-process memo
    below serve every organization of one attack instance from a single
    simulation — the sweep's analogue of the perf engine's shared
    content pass. Grouping only changes which worker runs a point, never
    its result: the memo key is the point's full attack-side science.
    """

    name = "hammer-sweep"

    def __init__(self, config: SweepConfig):
        self.config = config

    def fingerprint(self, cell: SweepCell) -> dict:
        return {
            "campaign": self.name,
            "sweep_version": SWEEP_VERSION,
            "attack": cell.attack,
            "mitigation": cell.mitigation,
            "scheme": cell.scheme,
            "seed": cell.seed,
            "config": asdict(self.config),
        }

    def group_key(self, cell: SweepCell):
        return (cell.attack, cell.mitigation, cell.seed)

    def run_item(self, cell: SweepCell) -> SweepOutcome:
        result, rh_config = _memoized_attack(cell, self.config)
        controller = registry.create(cell.scheme, key=SWEEP_KEY)
        array = VictimArray(
            controller,
            bits_per_row=rh_config.bits_per_row,
            base_address=cell.seed << 24,
        )
        for row in result.final_flip_bits:
            array.populate_row(row)
        array.apply_flips(result.final_flip_bits)
        consumed = array.read_all(cell.scheme)
        return SweepOutcome(
            attack=cell.attack,
            mitigation=cell.mitigation,
            scheme=cell.scheme,
            seed=cell.seed,
            total_flips=result.total_flips,
            intended_flips=result.intended_flips,
            mitigation_refreshes=result.mitigation_refreshes,
            lines_read=consumed.lines_read,
            corrected=consumed.corrected,
            detected_ue=consumed.detected_ue,
            silent_corruptions=consumed.silent_corruptions,
        )

    def serialize_result(self, cell, outcome: SweepOutcome):
        return outcome.to_json()

    def deserialize_result(self, cell, payload) -> SweepOutcome:
        return SweepOutcome.from_json(payload)

    def result_failures(self, outcome: SweepOutcome) -> int:
        return outcome.silent_corruptions


#: Per-process memo of the organization-independent attack simulation,
#: keyed by the attack-side science. Lives at module level so pool
#: workers populate it once per group and reuse it for every scheme.
_ATTACK_MEMO: dict = {}


def _memoized_attack(cell: SweepCell, config: SweepConfig):
    key = (cell.attack, cell.mitigation, cell.seed, tuple(sorted(asdict(config).items())))
    if key not in _ATTACK_MEMO:
        _ATTACK_MEMO[key] = _attack_result(cell, config)
    return _ATTACK_MEMO[key]


def run_sweep(
    cells: Sequence[SweepCell],
    config: Optional[SweepConfig] = None,
    *,
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    store=None,
    progress: Optional[ProgressCallback] = None,
) -> Dict[Tuple[str, str, str, int], SweepOutcome]:
    """Run every sweep point; results keyed by :attr:`SweepCell.key`.

    Bit-identical for any worker count; with a ``cache_dir`` a killed
    sweep resumes from its verified points. ``store`` accepts a ready
    store object (e.g. a :class:`repro.campaign.RemoteResultStore`, so
    concurrent sweeps share points) and takes precedence over
    ``cache_dir``. The progress callback receives the core's
    :class:`CampaignProgress` directly — the sweep has no legacy field
    vocabulary to translate into.
    """
    config = config or SweepConfig()
    workers = resolve_workers(workers)
    results = run_campaign(
        _SweepCampaign(config),
        cells,
        workers=workers,
        store_dir=cache_dir,
        store=store,
        progress=progress,
    )
    return {cell.key: results[cell.index] for cell in cells}


def report(
    outcomes: Dict[Tuple[str, str, str, int], SweepOutcome]
) -> str:
    """Tabulate a sweep: breakthroughs and what each scheme consumed."""
    from repro.experiments.reporting import format_table, print_banner

    print_banner("Row-Hammer attack sweep: breakthrough consumption by scheme")
    rows = []
    for key in sorted(outcomes):
        o = outcomes[key]
        verdict = (
            "SECURITY RISK"
            if o.security_risk
            else ("detected" if o.detected_ue else "held")
        )
        rows.append(
            (
                o.attack,
                o.mitigation,
                o.scheme,
                o.seed,
                o.intended_flips,
                o.corrected,
                o.detected_ue,
                o.silent_corruptions,
                verdict,
            )
        )
    table = format_table(
        [
            "Attack",
            "Mitigation",
            "Scheme",
            "Seed",
            "Flips",
            "Corrected",
            "DUE",
            "Silent",
            "Verdict",
        ],
        rows,
    )
    print(table)
    return table
