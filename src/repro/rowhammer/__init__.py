"""Row-Hammer substrate: disturbance model, attacks, and mitigations.

Implements the threat the paper defends against (Sections I, II):

- :mod:`repro.rowhammer.thresholds` — Table I / Figure 1a: the published
  RH-Threshold per DRAM generation.
- :mod:`repro.rowhammer.model` — a per-row disturbance-accumulation model
  with distance-dependent coupling and refresh-is-an-activation semantics
  (the lever Half-Double pulls).
- :mod:`repro.rowhammer.mitigations` — PARA (probabilistic), TRR-style
  capacity-limited tracking, and Graphene-style Misra-Gries tracking.
- :mod:`repro.rowhammer.attacks` — access-pattern generators: single- and
  double-sided hammering, TRRespass many-sided (tracker-eviction), and
  Half-Double (mitigation-assisted distance-2).
- :mod:`repro.rowhammer.runner` — drives an attack against a mitigation
  for a number of refresh windows and reports the victim bit-flips.
- :mod:`repro.rowhammer.integration` — wires breakthrough flips into the
  memory-controller data paths to show consumption outcomes: silent
  corruption under conventional ECC versus DUE under SafeGuard
  (Figure 1c).
- :mod:`repro.rowhammer.eccploit` — the ECCploit-style timing-channel
  attack against word-granularity SECDED (Section II-E, Case-3).
- :mod:`repro.rowhammer.sweep` — the attack-sweep campaign (attacks x
  mitigations x organizations) over the generic campaign core
  (``python -m repro hammer-sweep``).
- :mod:`repro.rowhammer.playbook` — declarative JSON/dict attack
  playbooks compiled through the shared schedule compiler, a library of
  named scenarios, and campaign execution across the full scheme
  registry (``python -m repro playbook``).
"""

from repro.rowhammer.thresholds import RH_THRESHOLDS, threshold_for
from repro.rowhammer.model import DisturbanceModel, RowHammerConfig
from repro.rowhammer.mitigations import (
    Mitigation,
    NoMitigation,
    PARA,
    TRRMitigation,
    GrapheneMitigation,
)
from repro.rowhammer.blockhammer import BlockHammerMitigation, CountingBloomFilter
from repro.rowhammer.isolation import (
    GuardRowAllocator,
    DomainLayout,
    IsolationOutcome,
    evaluate_isolation,
)
from repro.rowhammer.global_refresh import (
    RefreshAnalysis,
    analyze as analyze_global_refresh,
    feasibility_breakpoint,
)
from repro.rowhammer.fuzzer import PatternFuzzer, PatternGenome, FuzzResult
from repro.rowhammer.attacks import (
    single_sided,
    double_sided,
    many_sided,
    half_double,
    AttackPattern,
)
from repro.rowhammer.runner import AttackRunner, AttackResult
from repro.rowhammer.integration import VictimArray, ConsumptionOutcome
from repro.rowhammer.sweep import (
    SweepCell,
    SweepConfig,
    SweepOutcome,
    plan_sweep,
    run_sweep,
)
from repro.rowhammer.playbook import (
    SCENARIOS,
    PlaybookCell,
    PlaybookConfig,
    PlaybookOutcome,
    PlaybookSpec,
    compile_playbook,
    expand_spec,
    lint_scenarios,
    plan_playbook,
    register_scenario,
    report_playbook,
    run_playbook,
    scenario,
)

__all__ = [
    "RH_THRESHOLDS",
    "threshold_for",
    "DisturbanceModel",
    "RowHammerConfig",
    "Mitigation",
    "NoMitigation",
    "PARA",
    "TRRMitigation",
    "GrapheneMitigation",
    "BlockHammerMitigation",
    "CountingBloomFilter",
    "GuardRowAllocator",
    "DomainLayout",
    "IsolationOutcome",
    "evaluate_isolation",
    "RefreshAnalysis",
    "analyze_global_refresh",
    "feasibility_breakpoint",
    "PatternFuzzer",
    "PatternGenome",
    "FuzzResult",
    "single_sided",
    "double_sided",
    "many_sided",
    "half_double",
    "AttackPattern",
    "AttackRunner",
    "AttackResult",
    "VictimArray",
    "ConsumptionOutcome",
    "SweepCell",
    "SweepConfig",
    "SweepOutcome",
    "plan_sweep",
    "run_sweep",
    "SCENARIOS",
    "PlaybookCell",
    "PlaybookConfig",
    "PlaybookOutcome",
    "PlaybookSpec",
    "compile_playbook",
    "expand_spec",
    "lint_scenarios",
    "plan_playbook",
    "register_scenario",
    "report_playbook",
    "run_playbook",
    "scenario",
]
