"""Global mitigation: raising the refresh rate (Section II-D, "First").

The oldest RH defense: refresh often enough that no aggressor can reach
the RH-Threshold between two refreshes of its victim. The paper's
knockout argument: tREFW must shrink proportionally to the threshold, and
"below 32K ... we would need to refresh the memory in less than 2ms
(whereas it takes 2-3ms to refresh the entire memory even if the memory
spends 100% of the time only doing refresh)."

This module reproduces that arithmetic and exposes the refresh-overhead
curve: the fraction of time the DRAM is unavailable as the threshold
drops, hitting 100% (infeasible) right around the paper's 32K.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Single-bank activation period (tRC) — the attacker's maximum hammer rate.
TRC_NS = 46.0
#: Time to refresh the whole device once: 8192 REF commands x tRFC(350ns),
#: ~2.9ms for 8Gb devices — the paper's "2-3ms".
FULL_REFRESH_NS = 8192 * 350.0
#: Nominal refresh window.
NOMINAL_WINDOW_NS = 64_000_000.0


@dataclass(frozen=True)
class RefreshAnalysis:
    rh_threshold: int
    required_window_ns: float
    refresh_overhead: float  #: fraction of time spent refreshing

    @property
    def feasible(self) -> bool:
        """Infeasible once refresh needs more time than exists."""
        return self.refresh_overhead < 1.0

    @property
    def required_window_ms(self) -> float:
        return self.required_window_ns / 1e6


def required_refresh_window(rh_threshold: int) -> float:
    """Window (ns) such that no row can take ``threshold`` activations.

    An attacker hammers one aggressor at the tRC rate, so the victim must
    be refreshed before ``threshold`` activations elapse:
    window <= threshold * tRC.
    """
    if rh_threshold < 1:
        raise ValueError("threshold must be positive")
    return rh_threshold * TRC_NS


def analyze(rh_threshold: int) -> RefreshAnalysis:
    """The paper's feasibility arithmetic for one threshold."""
    window = required_refresh_window(rh_threshold)
    overhead = FULL_REFRESH_NS / window
    return RefreshAnalysis(rh_threshold, window, min(overhead, 10.0))


def feasibility_breakpoint() -> int:
    """The threshold below which global refresh cannot keep up.

    Solves window(threshold) = FULL_REFRESH_NS: refreshing takes all of
    the available time. The paper quotes ~32K; with tRC = 46ns and a
    2.87ms full refresh this lands at ~62K for 100% overhead — and the
    practical limit (a few percent overhead budget) is far higher still.
    Either way the conclusion is the paper's: today's sub-10K thresholds
    are beyond global refresh.
    """
    return int(FULL_REFRESH_NS / TRC_NS)
