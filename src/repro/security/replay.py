"""Replay attacks against per-line MACs (Section VII-C).

SafeGuard's MAC binds a line's contents to its address and the boot-time
key, but not to *time*: an adversary who could restore a previously valid
(data, metadata) pair for the same address would pass verification. The
paper's threat model excludes this — a *remote* Row-Hammer attacker can
only flip a handful of bits probabilistically, while a replay requires
rewriting the full 512-bit line and its metadata to exact old values.

:class:`ReplayAttack` stages the three relevant cases against a real
controller, and :func:`rowhammer_replay_feasibility` quantifies the
paper's argument that RH cannot mount the replay.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.backend import StoredLine


@dataclass(frozen=True)
class ReplayOutcome:
    """Results of the three staged replay scenarios."""

    #: Replaying an old (data, meta) pair at the SAME address verifies:
    #: the accepted residual risk of any MAC-only scheme.
    same_address_verifies: bool
    #: Copying a valid (data, meta) pair to a DIFFERENT address fails:
    #: the MAC is address-tweaked.
    relocation_detected: bool
    #: Splicing old data with new metadata (or vice versa) fails.
    splice_detected: bool


class ReplayAttack:
    """Stage replay scenarios against any :mod:`repro.core` controller."""

    def __init__(self, controller):
        self.controller = controller

    def run(self, address: int = 0x1000, other: int = 0x2000) -> ReplayOutcome:
        controller = self.controller
        old = b"\x01" * 64
        new = b"\x02" * 64

        # Capture the victim line's stored bits at version 1.
        controller.write(address, old)
        snapshot = controller.backend.load(address)
        captured = StoredLine(snapshot.data, snapshot.meta)

        # The victim updates the line; attacker replays the old bits.
        controller.write(address, new)
        entry = controller.backend.load(address)
        entry.data, entry.meta = captured.data, captured.meta
        replay = controller.read(address)
        same_address = replay.ok and replay.data == old

        # Relocation: the captured pair moved to a different address.
        controller.write(other, new)
        entry = controller.backend.load(other)
        entry.data, entry.meta = captured.data, captured.meta
        relocation_detected = controller.read(other).due

        # Splice: old data with current metadata.
        controller.write(address, new)
        entry = controller.backend.load(address)
        entry.data = captured.data  # metadata stays at version 2
        splice_detected = controller.read(address).due

        return ReplayOutcome(
            same_address_verifies=same_address,
            relocation_detected=relocation_detected,
            splice_detected=splice_detected,
        )


def rowhammer_replay_feasibility(
    bits_to_restore: int,
    flip_probability_per_window: float = 1e-4,
) -> float:
    """Expected refresh windows for RH to restore an exact bit pattern.

    A replay via Row-Hammer needs every one of ``bits_to_restore``
    specific cells to flip (and no others in the line). With per-targeted-
    cell flip probability ``p`` per window and flips being independent and
    unsteerable, the chance of the exact pattern in one window is
    ``p ** bits_to_restore``; the expectation of windows is its inverse.
    Even for a modest 8-bit difference this exceeds the lifetime of the
    universe — the paper's justification for accepting replay risk.
    """
    if not 0 < flip_probability_per_window < 1:
        raise ValueError("probability must be in (0,1)")
    if bits_to_restore < 1:
        raise ValueError("bits_to_restore must be positive")
    log_windows = -bits_to_restore * math.log10(flip_probability_per_window)
    return log_windows  # log10 of expected windows (avoids overflow)
