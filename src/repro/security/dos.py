"""Denial-of-service accounting for DUEs (Section VII-B).

SafeGuard turns breakthrough Row-Hammer into detected uncorrectable
errors; an adversary who can cause failures persistently could try to
weaponize the *response* (process restarts, machine reboots) as a DoS.
The paper's position: (1) without SafeGuard the same adversary mounts far
worse attacks, and (2) persistent failures are attributable — the system
can identify and quarantine the offending process [10], [33].

:class:`DUEMonitor` is that attribution mechanism: it maintains
exponentially decayed DUE rates per address region (or per process) and
escalates from ``healthy`` to ``degraded`` (relocate/restart) to
``malicious`` (quarantine) as the rate crosses thresholds. Naturally
occurring DUEs are rare events (Figure 6: ~1e-2 per module over 7
*years*), so even a conservative threshold separates attacks cleanly.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict


class RegionVerdict(enum.Enum):
    HEALTHY = "healthy"
    DEGRADED = "degraded"  #: restart / relocate the affected process
    MALICIOUS = "malicious"  #: quarantine: sustained, attributable DUEs


@dataclass
class _RegionState:
    decayed_rate: float = 0.0  #: DUEs per hour, exponentially decayed
    last_time_hours: float = 0.0
    total_dues: int = 0


class DUEMonitor:
    """Per-region DUE-rate tracking with exponential decay.

    Parameters
    ----------
    region_bytes:
        Attribution granularity (e.g. 2MB ~ a huge page / process arena).
    half_life_hours:
        Decay half-life of the rate estimate.
    degraded_rate, malicious_rate:
        DUEs-per-hour thresholds for the two escalations. The natural DUE
        rate of a healthy module is ~1e-6/hour, so defaults of 1/hour and
        30/hour are conservative by many orders of magnitude.
    """

    def __init__(
        self,
        region_bytes: int = 2 * 1024 * 1024,
        half_life_hours: float = 1.0,
        degraded_rate: float = 3.0,
        malicious_rate: float = 30.0,
    ):
        if region_bytes <= 0:
            raise ValueError("region_bytes must be positive")
        self.region_bytes = region_bytes
        self.half_life_hours = half_life_hours
        self.degraded_rate = degraded_rate
        self.malicious_rate = malicious_rate
        self._regions: Dict[int, _RegionState] = {}

    # -- event ingestion ---------------------------------------------------------

    def record_due(self, address: int, time_hours: float) -> RegionVerdict:
        """Record one DUE; returns the region's current verdict."""
        region = address // self.region_bytes
        state = self._regions.setdefault(region, _RegionState())
        state.decayed_rate = self._decay(state, time_hours) + 1.0 / max(
            self.half_life_hours, 1e-9
        )
        state.last_time_hours = time_hours
        state.total_dues += 1
        return self.verdict(address, time_hours)

    def verdict(self, address: int, time_hours: float) -> RegionVerdict:
        """The verdict for an address's region at a point in time."""
        state = self._regions.get(address // self.region_bytes)
        if state is None:
            return RegionVerdict.HEALTHY
        rate = self._decay(state, time_hours)
        if rate >= self.malicious_rate:
            return RegionVerdict.MALICIOUS
        if rate >= self.degraded_rate:
            return RegionVerdict.DEGRADED
        return RegionVerdict.HEALTHY

    def flagged_regions(self, time_hours: float) -> Dict[int, RegionVerdict]:
        """All regions currently above HEALTHY."""
        out = {}
        for region, state in self._regions.items():
            verdict = self.verdict(region * self.region_bytes, time_hours)
            if verdict is not RegionVerdict.HEALTHY:
                out[region] = verdict
        return out

    # -- internals -----------------------------------------------------------------

    def _decay(self, state: _RegionState, time_hours: float) -> float:
        dt = max(0.0, time_hours - state.last_time_hours)
        return state.decayed_rate * math.pow(0.5, dt / self.half_life_hours)
