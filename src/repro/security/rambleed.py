"""RAMBleed-style confidentiality leakage and the TME defense (§VII-D).

RAMBleed [25] reads memory *without* accessing it: Row-Hammer flips are
data-dependent (a cell flips more readily when its neighbours store the
opposite charge), so an attacker who hammers rows around a secret and
observes which of *their own* cells flip learns the secret's bits — no
integrity violation occurs, so neither ECC correction nor SafeGuard's MAC
stops the leak (the paper concedes this and points at transparent memory
encryption, e.g. Intel TME).

This module implements:

- a data-dependent extension of the disturbance model: a sampled weak
  cell flips only when the aligned bit of the adjacent (victim) row holds
  the opposite value — the striped-page RAMBleed precondition;
- :class:`RAMBleedExperiment`: the attacker places probe rows around the
  secret row, hammers, and decodes secret bits from its own flips;
- :class:`TMEEncryptedMemory`: SPECK-based transparent line encryption;
  under it the charge pattern adjacent to the probes is a pseudorandom
  function of the secret, and the recovered "secret" decorrelates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.mac.speck import Speck64
from repro.utils.bits import bytes_to_words, words_to_bytes
from repro.utils.rng import derive_seed


@dataclass
class RAMBleedResult:
    secret_bits: List[int]
    recovered_bits: List[int]

    @property
    def accuracy(self) -> float:
        if not self.secret_bits:
            return 0.0
        hits = sum(1 for s, r in zip(self.secret_bits, self.recovered_bits) if s == r)
        return hits / len(self.secret_bits)


class TMEEncryptedMemory:
    """Transparent memory encryption (Intel TME-style, no integrity).

    Encrypts each 64-bit word with an address-tweaked SPECK permutation
    before it reaches DRAM. Purely confidentiality: there is no MAC, and
    decryption of tampered ciphertext yields garbage rather than an error
    (which is why TME complements, not replaces, SafeGuard).
    """

    def __init__(self, key: bytes):
        self._cipher = Speck64(key)

    def encrypt_line(self, line: bytes, address: int) -> bytes:
        return words_to_bytes(
            [
                self._cipher.encrypt_block(w ^ self._tweak(address, i))
                for i, w in enumerate(bytes_to_words(line))
            ]
        )

    def decrypt_line(self, line: bytes, address: int) -> bytes:
        return words_to_bytes(
            [
                self._cipher.decrypt_block(w) ^ self._tweak(address, i)
                for i, w in enumerate(bytes_to_words(line))
            ]
        )

    def _tweak(self, address: int, word: int) -> int:
        return ((address << 3) | word) * 0x9E3779B97F4A7C15 & ((1 << 64) - 1)


class RAMBleedExperiment:
    """The RAMBleed read primitive against a striped probe layout.

    The attacker owns rows ``secret_row - 1`` and ``secret_row + 1`` and
    fills them with a known pattern; hammering makes each *probe* cell at
    bit position ``i`` flip with high probability only when the secret
    row's bit ``i`` differs from the probe's stored value. Observing which
    probe cells flipped recovers the secret's bits.
    """

    def __init__(
        self,
        n_bits: int = 256,
        flip_probability: float = 0.85,
        noise_probability: float = 0.02,
        seed: int = 0,
    ):
        self.n_bits = n_bits
        self.flip_probability = flip_probability
        self.noise_probability = noise_probability
        self._rng = random.Random(derive_seed(seed, 0xB1EED))

    def _hammer_probes(self, secret_bits: List[int], probe_value: int) -> List[int]:
        """Which probe cells flipped (1 = flipped), data-dependently."""
        flips = []
        for bit in secret_bits:
            if bit != probe_value:
                flips.append(1 if self._rng.random() < self.flip_probability else 0)
            else:
                flips.append(1 if self._rng.random() < self.noise_probability else 0)
        return flips

    def run(self, secret: bytes, encryption: Optional[TMEEncryptedMemory] = None,
            address: int = 0x4000) -> RAMBleedResult:
        """Recover ``secret``'s first ``n_bits`` bits via probe flips.

        With ``encryption``, the *stored* bits adjacent to the probes are
        the ciphertext: the attacker still reads those stored bits
        perfectly, but they are a pseudorandom function of the secret.
        """
        stored = (
            encryption.encrypt_line(secret.ljust(64, b"\x00")[:64], address)
            if encryption
            else secret.ljust(64, b"\x00")[:64]
        )
        stored_bits = [
            (stored[i // 8] >> (i % 8)) & 1 for i in range(self.n_bits)
        ]
        secret_bits = [
            (secret[i // 8] >> (i % 8)) & 1 for i in range(min(self.n_bits, len(secret) * 8))
        ]
        # Probes initialized to 0: a flip marks a stored 1 (opposite charge).
        flips = self._hammer_probes(stored_bits, probe_value=0)
        recovered_stored = flips  # flip -> stored bit was 1
        # Without encryption the stored bits ARE the secret bits.
        recovered = recovered_stored[: len(secret_bits)]
        return RAMBleedResult(secret_bits=secret_bits, recovered_bits=recovered)
