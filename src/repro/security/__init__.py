"""Security-discussion substrate (Section VII).

Executable versions of the paper's security analysis:

- :mod:`repro.security.replay` — Section VII-C: MAC checking is
  vulnerable to replaying an *old* (data, MAC) pair at the same address;
  relocation to another address fails because the MAC is address-tweaked.
  The module stages both and quantifies why remote Row-Hammer cannot
  mount the replay (it would need to precisely flip a large, known set of
  data and MAC bits simultaneously).
- :mod:`repro.security.dos` — Section VII-B: detection converts attacks
  into DUEs, which an adversary could spam (denial of service). The DUE
  monitor attributes DUEs to address regions/processes and flags
  persistent offenders for preventative action.
- :mod:`repro.security.rambleed` — Section VII-D: RAMBleed infers victim
  data from the *data-dependent* nature of RH flips; SafeGuard's ECC
  correction preserves integrity but the timing channel remains. The
  module implements the data-dependent flip model, the read primitive,
  and the paper's suggested defense (TME-style transparent memory
  encryption), showing the leaked bit decorrelates under encryption.
"""

from repro.security.replay import ReplayAttack, ReplayOutcome, rowhammer_replay_feasibility
from repro.security.dos import DUEMonitor, RegionVerdict
from repro.security.rambleed import RAMBleedExperiment, TMEEncryptedMemory

__all__ = [
    "ReplayAttack",
    "ReplayOutcome",
    "rowhammer_replay_feasibility",
    "DUEMonitor",
    "RegionVerdict",
    "RAMBleedExperiment",
    "TMEEncryptedMemory",
]
