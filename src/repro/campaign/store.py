"""The unified, fingerprint-verified campaign result store.

One JSON file per completed work item (a *cell*), all written through a
single atomic-write path (temp file + ``fsync`` + ``os.replace``) so a
kill at any instant leaves either the old cell or the new one — never a
torn file. Every cell embeds the *full* science fingerprint it was
computed under; :meth:`ResultStore.load` verifies it against the
caller's fingerprint before a cached result may substitute for a fresh
computation, and reports *why* a cell was unusable:

- ``"absent"`` — no file;
- ``"corrupt"`` — unreadable or structurally wrong (a truncated write
  from a killed run, a hand-mangled file);
- ``"stale"`` — well-formed but computed under different science (a
  fingerprint or schema-version mismatch, e.g. a different seed, scale,
  or simulation engine).

The distinction flows into the engine's progress snapshots
(``rejected_corrupt`` / ``rejected_stale``), so an operator can tell a
damaged store from a re-scoped campaign at a glance.

Completed cells are additionally recorded in an append-only index file
(``campaign-index.jsonl``, one JSON object per line) naming the
campaign, the item key, and the cell file. The index is observational:
loads never consult it (the fingerprint inside each cell is the source
of truth), but ``python -m repro campaign-status DIR`` can summarize a
store — per-campaign completion counts — without recomputing a single
fingerprint.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Dict, List, Optional, Tuple

#: Cell schema version; bumped if the payload layout changes. A version
#: mismatch is a *stale* cell (recompute), never an error.
STORE_VERSION = 1

#: Append-only completion log, one JSON object per line.
INDEX_NAME = "campaign-index.jsonl"


def atomic_write_json(path: str, payload: Any) -> None:
    """Atomically persist ``payload`` as JSON at ``path``.

    Temp file in the destination directory, ``fsync`` before rename, so
    concurrent writers race benignly (last completed write wins with
    intact content) and a crash never leaves a partial file under the
    final name.
    """
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=f".{os.path.basename(path)}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def fingerprint_digest(fingerprint: dict) -> str:
    """Short stable digest of a fingerprint (cell file naming)."""
    canonical = json.dumps(fingerprint, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


class ResultStore:
    """Fingerprint-verified JSON cells plus the append-only index.

    ``index_results=False`` disables the index for stores whose exact
    directory contents are part of their contract (the Monte-Carlo
    engine's checkpoint directories hold exactly one file per shard).
    """

    def __init__(self, directory: str, index_results: bool = True):
        self.directory = directory
        self.index_results = index_results

    def path(self, cell_name: str) -> str:
        return os.path.join(self.directory, cell_name)

    def load(
        self, cell_name: str, fingerprint: dict
    ) -> Tuple[Optional[Any], Optional[str]]:
        """Load one cell; ``(result, None)`` or ``(None, reason)``.

        The *full* stored fingerprint is compared, not just the file
        name, so a digest collision or a hand-edited file can never
        smuggle in a result computed under different science. Any
        failure falls back to recomputation — a truncated file from a
        killed run must never poison a resume.
        """
        path = self.path(cell_name)
        if not os.path.exists(path):
            return None, "absent"
        try:
            with open(path) as handle:
                payload = json.load(handle)
            version = payload["version"]
            stored = payload["fingerprint"]
            result = payload["result"]
        except (OSError, ValueError, KeyError, TypeError):
            return None, "corrupt"
        if version != STORE_VERSION or stored != fingerprint:
            return None, "stale"
        return result, None

    def store(
        self,
        cell_name: str,
        fingerprint: dict,
        result: Any,
        *,
        campaign: Optional[str] = None,
        key: Any = None,
        failures: int = 0,
    ) -> None:
        """Atomically persist one cell and append it to the index.

        ``failures`` is the domain's failure count for the result
        (``Campaign.result_failures``); it rides on the index entry so
        ``campaign-status`` can total failures without opening a cell.
        """
        payload = {
            "version": STORE_VERSION,
            "fingerprint": fingerprint,
            "result": result,
        }
        atomic_write_json(self.path(cell_name), payload)
        if self.index_results and campaign is not None:
            entry = {
                "campaign": campaign,
                "key": key,
                "cell": cell_name,
                "failures": int(failures),
            }
            line = json.dumps(entry, sort_keys=True)
            # A single small write on an O_APPEND descriptor is atomic on
            # POSIX, so concurrent campaigns interleave whole lines.
            with open(self.path(INDEX_NAME), "a") as handle:
                handle.write(line + "\n")


def read_index(directory: str) -> List[dict]:
    """Parse the append-only index; malformed lines are skipped.

    (A torn line can only exist if the host crashed mid-append; the
    cells themselves are still verified by fingerprint on load.)
    """
    path = os.path.join(directory, INDEX_NAME)
    entries: List[dict] = []
    try:
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue
                if isinstance(entry, dict) and "campaign" in entry:
                    entries.append(entry)
    except OSError:
        return []
    return entries


def summarize_index(directory: str) -> Dict[str, Dict[str, int]]:
    """Per-campaign completion and failure counts from the index alone.

    Returns ``{campaign: {"completed": distinct item keys, "cells":
    distinct cell files, "entries": raw index lines, "failures": domain
    failure events summed over cells}}``. Re-running a campaign
    re-appends its items, so ``entries`` exceeding ``completed`` simply
    means cells were rewritten (same science, same key) — not
    duplicated work; each cell's failure count is taken from its latest
    entry, so rewrites never double-count failures (entries written
    before the index carried failure counts contribute zero).
    """
    summary: Dict[str, Dict[str, Any]] = {}
    for entry in read_index(directory):
        name = str(entry["campaign"])
        bucket = summary.setdefault(
            name, {"keys": set(), "cells": set(), "entries": 0, "fail_by_cell": {}}
        )
        bucket["entries"] += 1
        bucket["keys"].add(json.dumps(entry.get("key"), sort_keys=True))
        cell = entry.get("cell")
        if cell:
            bucket["cells"].add(cell)
            failures = entry.get("failures")
            bucket["fail_by_cell"][cell] = (
                int(failures) if isinstance(failures, (int, float)) else 0
            )
    return {
        name: {
            "completed": len(bucket["keys"]),
            "cells": len(bucket["cells"]),
            "entries": bucket["entries"],
            "failures": sum(bucket["fail_by_cell"].values()),
        }
        for name, bucket in sorted(summary.items())
    }
