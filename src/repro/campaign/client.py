"""Synchronous clients for the campaign server.

:class:`RemoteResultStore` speaks the :class:`repro.campaign.ResultStore`
``load``/``store`` contract over one persistent TCP connection, so the
campaign engine (and every domain adapter's ``store=`` parameter) can
swap a network store in for a local directory without changing a line of
campaign logic. Verification stays server-side and *full-fingerprint*:
the rejection taxonomy (``absent``/``corrupt``/``stale``) comes back
exactly as a local store would report it.

On top of the raw contract the remote store adds claim coordination:
before reporting a cell ``absent`` (= "you should compute this") it
claims the cell, and if another client already holds the claim it
reports ``"inflight"`` instead — the engine then computes its *own*
pending cells first and comes back via :meth:`load_wait`, which blocks
until the other client's result lands (a cache hit) or its claim dies
with it (our turn to compute). Claims ride on the connection: killing a
client releases everything it held, so a resumed campaign never waits
out a dead claimant's lease.

:class:`CampaignClient` is the job-API sibling: submit/status/results
plus a streaming ``watch`` over the server's progress events.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.campaign.wire import parse_url, recv_frame, send_frame

#: One server-side blocking-wait chunk inside :meth:`load_wait`; each
#: timeout reloads and re-tries the claim, so a dead producer stalls a
#: waiter by at most one chunk.
DEFAULT_WAIT_CHUNK_S = 5.0


class _Connection:
    """One framed request/response socket with lock + lazy reconnect."""

    def __init__(self, host: str, port: int, timeout_s: Optional[float]):
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self._sock: Optional[socket.socket] = None
        self._lock = threading.Lock()

    def _connect(self) -> socket.socket:
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout_s
            )
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return self._sock

    def close(self) -> None:
        with self._lock:
            if self._sock is not None:
                try:
                    self._sock.close()
                finally:
                    self._sock = None

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One round trip; reconnects once on a dead connection.

        Note the reconnect makes the server see a *new* connection, so
        any claims held on the old one are gone — which is the correct
        failure semantics: a client that lost its link also lost its
        right to block others.
        """
        with self._lock:
            for attempt in (0, 1):
                try:
                    sock = self._connect()
                    send_frame(sock, payload)
                    response = recv_frame(sock)
                    if response is None:
                        raise ConnectionError("server closed the connection")
                    return response
                except (ConnectionError, OSError, socket.timeout):
                    if self._sock is not None:
                        try:
                            self._sock.close()
                        finally:
                            self._sock = None
                    if attempt:
                        raise
        raise ConnectionError("unreachable")  # pragma: no cover


def _checked(response: Dict[str, Any]) -> Dict[str, Any]:
    if not response.get("ok"):
        raise RuntimeError(f"campaign server error: {response.get('error')}")
    return response


class RemoteResultStore:
    """The ``ResultStore`` contract over a campaign-server connection.

    ``claim=False`` turns off inflight coordination (pure shared cache:
    every client recomputes misses independently); the default
    coordinates concurrent clients so overlapping grids are computed
    exactly once.
    """

    def __init__(
        self,
        url: str,
        *,
        claim: bool = True,
        wait_chunk_s: float = DEFAULT_WAIT_CHUNK_S,
        timeout_s: Optional[float] = 120.0,
    ):
        host, port = parse_url(url)
        self.url = url
        self.claim_cells = claim
        self.wait_chunk_s = wait_chunk_s
        self._conn = _Connection(host, port, timeout_s)

    # -- the ResultStore contract ------------------------------------------------

    def load(
        self, cell_name: str, fingerprint: dict
    ) -> Tuple[Optional[Any], Optional[str]]:
        """Server-verified load, claiming misses we intend to compute.

        ``(result, None)`` on a verified hit; ``(None, "absent" |
        "corrupt" | "stale")`` when this client should compute the cell
        (claim acquired, when claiming is on); ``(None, "inflight")``
        when another client holds the claim — resolve later with
        :meth:`load_wait`.
        """
        response = _checked(
            self._conn.request(
                {"op": "load", "cell": cell_name, "fingerprint": fingerprint}
            )
        )
        reason = response.get("reason")
        if reason is None:
            return response.get("result"), None
        if self.claim_cells and not self._try_claim(cell_name):
            return None, "inflight"
        return None, reason

    def store(
        self,
        cell_name: str,
        fingerprint: dict,
        result: Any,
        *,
        campaign: Optional[str] = None,
        key: Any = None,
        failures: int = 0,
    ) -> None:
        _checked(
            self._conn.request(
                {
                    "op": "store",
                    "cell": cell_name,
                    "fingerprint": fingerprint,
                    "result": result,
                    "campaign": campaign,
                    "key": key,
                    "failures": int(failures),
                }
            )
        )

    # -- inflight coordination ---------------------------------------------------

    def _try_claim(self, cell_name: str) -> bool:
        response = _checked(self._conn.request({"op": "claim", "cell": cell_name}))
        return bool(response.get("granted"))

    def load_wait(
        self, cell_name: str, fingerprint: dict
    ) -> Tuple[Optional[Any], Optional[str]]:
        """Block until an inflight cell resolves.

        Returns a verified ``(result, None)`` once the producing client
        stores it, or ``(None, reason)`` the moment this client wins the
        claim instead (the producer died or let its lease lapse) —
        meaning the cell is now ours to compute.
        """
        while True:
            response = _checked(
                self._conn.request(
                    {
                        "op": "load",
                        "cell": cell_name,
                        "fingerprint": fingerprint,
                        "wait": True,
                        "wait_s": self.wait_chunk_s,
                    }
                )
            )
            reason = response.get("reason")
            if reason is None:
                return response.get("result"), None
            if not self.claim_cells or self._try_claim(cell_name):
                return None, reason
            time.sleep(min(0.05, self.wait_chunk_s))

    def release(self, cell_name: str) -> None:
        """Give back a claim this client will not fulfil."""
        _checked(self._conn.request({"op": "release", "cell": cell_name}))

    def close(self) -> None:
        """Drop the connection (and with it every claim this client holds)."""
        self._conn.close()

    def __enter__(self) -> "RemoteResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class CampaignClient:
    """Job/status front-door client for one campaign server."""

    def __init__(self, url: str, *, timeout_s: Optional[float] = 120.0):
        self.url = url
        host, port = parse_url(url)
        self._host = host
        self._port = port
        self._timeout_s = timeout_s
        self._conn = _Connection(host, port, timeout_s)

    def ping(self) -> Dict[str, Any]:
        return _checked(self._conn.request({"op": "ping"}))

    def status(self) -> Dict[str, Dict[str, int]]:
        """The server store's ``summarize_index`` summary."""
        return _checked(self._conn.request({"op": "status"}))["summary"]

    def stats(self) -> Dict[str, Any]:
        return _checked(self._conn.request({"op": "stats"}))

    def submit(self, kind: str, params: Optional[dict] = None) -> str:
        response = _checked(
            self._conn.request({"op": "submit", "kind": kind, "params": params or {}})
        )
        return response["job"]

    def job_status(self, job_id: str) -> Dict[str, Any]:
        return _checked(self._conn.request({"op": "job-status", "job": job_id}))

    def job_results(self, job_id: str) -> Any:
        return _checked(self._conn.request({"op": "job-results", "job": job_id}))[
            "results"
        ]

    def jobs(self) -> Any:
        return _checked(self._conn.request({"op": "jobs"}))["jobs"]

    def watch(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """Stream a job's progress events until its ``end`` event.

        Uses a dedicated connection so a long watch never blocks this
        client's request/response traffic.
        """
        sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout_s
        )
        try:
            send_frame(sock, {"op": "watch", "job": job_id})
            head = recv_frame(sock)
            if head is None or not head.get("ok"):
                raise RuntimeError(
                    f"campaign server error: {(head or {}).get('error')}"
                )
            while True:
                event = recv_frame(sock)
                if event is None:
                    return
                yield event
                if event.get("event") == "end":
                    return
        finally:
            sock.close()

    def wait(self, job_id: str, *, poll_s: float = 0.2) -> Dict[str, Any]:
        """Poll until the job leaves queued/running; returns its status."""
        while True:
            status = self.job_status(job_id)
            if status["state"] not in ("queued", "running"):
                return status
            time.sleep(poll_s)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "CampaignClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
