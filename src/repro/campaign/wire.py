"""Length-prefixed JSON framing for the campaign store/job protocol.

One frame = a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON. The same framing carries every protocol exchange —
the client's request objects, the server's response objects, and the
streamed ndjson-style progress events of a job watch — over either a
blocking socket (the synchronous client) or an asyncio stream (the
server). Stdlib only; no new dependencies.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Optional, Tuple

#: Protocol schema version; both sides send it in ``ping`` and refuse to
#: talk across a mismatch (the store contract is too load-bearing to
#: guess at).
PROTOCOL_VERSION = 1

#: Default TCP port for ``python -m repro serve`` (0 = ephemeral).
DEFAULT_PORT = 7797

#: Upper bound on a single frame; a length prefix beyond this is treated
#: as a corrupt/hostile stream, not an allocation request.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


def encode_frame(payload: Any) -> bytes:
    """JSON object -> one wire frame (header + body)."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ValueError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _HEADER.pack(len(body)) + body


def decode_length(header: bytes) -> int:
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ConnectionError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    return length


def parse_url(url: str) -> Tuple[str, int]:
    """``host:port`` or ``tcp://host:port`` -> ``(host, port)``."""
    text = url.strip()
    if "://" in text:
        scheme, _, text = text.partition("://")
        if scheme != "tcp":
            raise ValueError(f"unsupported store URL scheme {scheme!r} (tcp only)")
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ValueError(f"store URL {url!r} must be HOST:PORT")
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(f"store URL {url!r} has a non-numeric port") from None


# -- blocking-socket side (client) -----------------------------------------------


def send_frame(sock: socket.socket, payload: Any) -> None:
    sock.sendall(encode_frame(payload))


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes; ``None`` on clean EOF at a boundary."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == n:
                return None
            raise ConnectionError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[Any]:
    """One frame from a blocking socket; ``None`` on clean EOF."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    body = _recv_exact(sock, decode_length(header))
    if body is None:
        raise ConnectionError("connection closed between header and body")
    return json.loads(body.decode("utf-8"))


# -- asyncio side (server) -------------------------------------------------------


async def read_frame(reader) -> Optional[Any]:
    """One frame from an asyncio reader; ``None`` on clean EOF."""
    import asyncio

    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ConnectionError("connection closed mid-header") from None
    try:
        body = await reader.readexactly(decode_length(header))
    except asyncio.IncompleteReadError:
        raise ConnectionError("connection closed mid-frame") from None
    return json.loads(body.decode("utf-8"))


async def write_frame(writer, payload: Any) -> None:
    writer.write(encode_frame(payload))
    await writer.drain()
