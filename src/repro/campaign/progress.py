"""Shared campaign progress/worker machinery.

Every campaign engine in the repo — the sharded Monte-Carlo runs of
:mod:`repro.faultsim.parallel`, the performance-cell grids of
:mod:`repro.perf.campaign`, and the Row-Hammer attack sweeps of
:mod:`repro.rowhammer.sweep` — reports progress the same way: a snapshot
object handed to a user callback after every completed work item, with a
rate, an ETA, a completed fraction, and a one-line ``describe()``. The
*math* for all of that lives here exactly once (:class:`ProgressBase`);
the domain modules only declare their field *names* (``shards_done`` vs
``cells_done``) as thin dataclass subclasses, so a refactor of the
accounting cannot drift between engines.

Worker-count resolution is likewise shared: explicit argument > config
field > domain-specific environment variable (``REPRO_MC_WORKERS``,
``REPRO_PERF_WORKERS``) > the generic ``REPRO_WORKERS`` > 1.
"""

from __future__ import annotations

import copy
import os
import threading
import warnings
from dataclasses import dataclass
from typing import Callable, Optional

#: Generic worker-count fallback consulted by *every* campaign engine
#: when neither the call, the config, nor the engine's own environment
#: variable pins a count. Lets one shell export parallelize all three
#: campaign families at once.
GENERIC_WORKERS_ENV = "REPRO_WORKERS"

#: Every campaign's progress callback receives one snapshot per
#: completed (or store-loaded) work item.
ProgressCallback = Callable[["ProgressBase"], None]


def _env_workers(name: str) -> Optional[int]:
    raw = os.environ.get(name, "").strip()
    return int(raw) if raw else None


def resolve_workers(
    workers: Optional[int] = None,
    config_workers: Optional[int] = None,
    env: Optional[str] = None,
    strict: bool = False,
) -> int:
    """Resolve a worker count with the repo-wide precedence.

    Explicit argument > ``config_workers`` > the engine's own ``env``
    variable > :data:`GENERIC_WORKERS_ENV` > 1 (in-process, no pool).

    Counts above ``os.cpu_count()`` are clamped with a one-line warning:
    every campaign worker is CPU-bound, so oversubscription only adds
    scheduler thrash (BENCH_perf.json measured workers=4 on a 1-CPU
    host at ~4x *slower* than sequential). Pass ``strict=True`` to keep
    the requested count anyway (e.g. to measure that penalty).
    """
    if workers is None:
        workers = config_workers
    if workers is None and env:
        workers = _env_workers(env)
    if workers is None:
        workers = _env_workers(GENERIC_WORKERS_ENV)
    workers = 1 if workers is None else int(workers)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    cpus = os.cpu_count() or 1
    if workers > cpus and not strict:
        warnings.warn(
            f"requested {workers} campaign workers on a {cpus}-CPU host; "
            f"clamping to {cpus} (CPU-bound workers only thrash when "
            "oversubscribed — pass strict=True to keep the request)",
            RuntimeWarning,
            stacklevel=2,
        )
        workers = cpus
    return workers


#: Guards the lazy creation of each instance's mutation lock (two
#: threads racing the *first* mutation must end up with one lock).
_LOCK_GUARD = threading.Lock()


class ProgressBase:
    """Rate/ETA/fraction accounting over generic progress attributes.

    Subclasses provide (as dataclass fields or alias properties):

    - ``items_done`` / ``items_total`` — completed vs. planned work items
      (shards, cells, sweep points);
    - ``items_from_store`` — items satisfied from the result store
      (checkpoints / cache) instead of computed;
    - ``units_done`` / ``units_total`` — the finer-grained work measure
      the rate and ETA are quoted in (modules for the Monte-Carlo
      engine; identical to items elsewhere);
    - ``elapsed_s`` — wall-clock seconds since the campaign started;
    - ``rejected_corrupt`` / ``rejected_stale`` — store cells that were
      present but unusable (unparseable vs. fingerprint/version
      mismatch), i.e. *why* a resume recomputed work.

    Class knobs tune the ``describe()`` line per domain: the item noun,
    the rate noun, and the rate's format spec.
    """

    ITEM_NOUN = "item"
    RATE_NOUN: Optional[str] = None  # defaults to ITEM_NOUN + "s"
    RATE_FMT = ",.0f"

    # -- concurrent mutation -----------------------------------------------------
    #
    # Most progress objects are immutable snapshots emitted by a single
    # campaign parent. The campaign *server*, however, keeps live
    # ProgressBase instances that several threads mutate at once — the
    # asyncio loop thread accounting requests while job-runner executor
    # threads account campaign progress. Those writers must go through
    # :meth:`update`/:meth:`advance`, and readers that need a consistent
    # view take :meth:`snapshot`; all three share one per-instance lock.
    # Direct attribute reads (``describe`` on an emitted snapshot) stay
    # lock-free, exactly as before.

    def _sync(self) -> threading.RLock:
        lock = self.__dict__.get("_lock")
        if lock is None:
            with _LOCK_GUARD:
                lock = self.__dict__.setdefault("_lock", threading.RLock())
        return lock

    def update(self, **fields) -> None:
        """Atomically set attribute values (thread-safe)."""
        with self._sync():
            for name, value in fields.items():
                setattr(self, name, value)

    def advance(self, **deltas) -> None:
        """Atomically add to counter attributes (thread-safe)."""
        with self._sync():
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)

    def snapshot(self):
        """A consistent shallow copy, safe to read/serialize lock-free."""
        with self._sync():
            clone = copy.copy(self)
        clone.__dict__.pop("_lock", None)
        return clone

    def __getstate__(self):
        # Locks don't pickle; a revived instance re-creates one lazily.
        state = self.__dict__.copy()
        state.pop("_lock", None)
        return state

    @property
    def rate(self) -> float:
        """Work units completed per second (0 when unknown)."""
        return self.units_done / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def eta_s(self) -> float:
        """Estimated seconds until completion (0 when done or unknown)."""
        rate = self.rate
        remaining = self.units_total - self.units_done
        return remaining / rate if rate > 0 and remaining > 0 else 0.0

    @property
    def fraction_done(self) -> float:
        return self.units_done / self.units_total if self.units_total else 1.0

    def _trailer(self) -> str:
        """Domain-specific tail of the describe line."""
        return f"cached {self.items_from_store}"

    def describe(self) -> str:
        """One-line human summary (used by CLI/script progress printers)."""
        rate_noun = self.RATE_NOUN or f"{self.ITEM_NOUN}s"
        text = (
            f"{self.ITEM_NOUN} {self.items_done}/{self.items_total} "
            f"({self.fraction_done:.0%}) "
            f"{self.rate:{self.RATE_FMT}} {rate_noun}/s "
            f"eta {self.eta_s:.0f}s "
            f"{self._trailer()}"
        )
        rejected = self.rejected_corrupt + self.rejected_stale
        if rejected:
            text += (
                f" rejected {self.rejected_corrupt} corrupt"
                f"/{self.rejected_stale} stale"
            )
        return text


@dataclass
class CampaignProgress(ProgressBase):
    """The generic snapshot the core engine emits.

    Domain adapters translate it into their own field vocabulary before
    invoking user callbacks; campaigns without legacy vocabulary (the
    Row-Hammer sweep) hand it to callers as-is.
    """

    items_done: int = 0
    items_total: int = 0
    items_from_store: int = 0
    units_done: int = 0
    units_total: int = 0
    failures: int = 0
    elapsed_s: float = 0.0
    rejected_corrupt: int = 0
    rejected_stale: int = 0
