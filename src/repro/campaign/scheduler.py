"""Work-stealing campaign scheduler with hung-worker supervision.

The pool scheduler in :mod:`repro.campaign.engine` partitions groups
statically: each retry round submits every unfinished group to a fresh
``ProcessPoolExecutor`` and waits for the round to drain. That is simple
and correct, but a skewed grid (lbm/roms perf cells run 3–5x longer than
gcc cells) ends the round serialized on whichever worker drew the slow
groups while the others sit idle.

This module keeps ``workers`` *persistent* processes alive for the whole
campaign and lets each pull the next whole group from a shared queue the
moment it goes idle — work stealing at group granularity. Groups stay
atomic (the perf engine's content memo and the sweep's per-attack state
still share within a group); only their *placement* becomes dynamic, so
the slow groups overlap with many small ones instead of defining the
critical path.

Supervision rides on the result stream itself: every ``claim``/``item``/
``done`` message a worker sends doubles as a heartbeat. A worker that
dies (queue draw crashed the process) or goes silent for
``heartbeat_timeout_s`` while holding a group is killed and replaced,
and its group is requeued with a bounded attempt budget — the stealing
analogue of the pool scheduler's ``BrokenProcessPool`` retry. Requeues
are safe to overlap with stale execution: results are deduplicated by
item index (first completion wins, and items are deterministic, so
"first" is also "only" in content).

Determinism: results are keyed by item index and every item is a pure
function of its fingerprint, so the output mapping is bit-identical to
``run_campaign`` for any worker count and any steal order.
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue
import time
import traceback
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence

from repro.campaign.engine import Campaign, CampaignError, _CampaignRun
from repro.campaign.progress import CampaignProgress

#: Seconds of message silence from a group-holding worker before it is
#: presumed hung, killed, and its group requeued. Item boundaries are
#: the heartbeat, so this must exceed the longest single item.
DEFAULT_HEARTBEAT_TIMEOUT_S = 300.0

#: Parent poll interval for the result stream / liveness checks.
DEFAULT_POLL_S = 0.05

#: Seconds the fleet must be simultaneously idle (with work nominally
#: outstanding) before unfinished groups are re-enqueued. Covers the
#: window where a worker dies between drawing a task and its claim
#: message flushing (``os._exit`` kills the queue feeder thread mid
#: buffer) — the task would otherwise be lost silently. An idle fleet
#: with outstanding groups can only mean drawn-and-lost tasks (idle
#: workers drain a live queue in milliseconds), so this recovery charges
#: the group's attempt budget exactly like an attributed crash; requeues
#: stay idempotent through the index dedupe.
_IDLE_REQUEUE_S = 2.0


def _worker_main(worker_id: int, campaign: Campaign, task_q, result_q) -> None:
    """Persistent worker: pull groups until the ``None`` sentinel.

    Messages are ``(kind, worker_id, group_key, payload)``:
    ``claim``/``done`` bracket a group, ``item`` carries one
    ``(index, result)``, ``error`` carries a deterministic exception
    (pre-checked picklable, else its traceback text). Every message is
    also a liveness heartbeat.
    """
    while True:
        task = task_q.get()
        if task is None:
            return
        key, items = task
        result_q.put(("claim", worker_id, key, None))
        try:
            for item in items:
                result = campaign.run_item(item)
                result_q.put(("item", worker_id, key, (item.index, result)))
            result_q.put(("done", worker_id, key, None))
        except BaseException as exc:  # deterministic failure: report, stay alive
            text = traceback.format_exc()
            try:
                pickle.dumps(exc)
                payload = (exc, text)
            except Exception:
                payload = (None, f"{exc!r}\n{text}")
            result_q.put(("error", worker_id, key, payload))


def _kill(proc) -> None:
    if proc.is_alive():
        proc.terminate()
        proc.join(timeout=2.0)
    if proc.is_alive():  # pragma: no cover - SIGTERM normally suffices
        proc.kill()
        proc.join(timeout=2.0)


def run_stealing(
    campaign: Campaign,
    pending: Sequence[Any],
    workers: int,
    finish: Callable[[Any, Any], None],
    *,
    max_attempts: int = 3,
    heartbeat_timeout_s: float = DEFAULT_HEARTBEAT_TIMEOUT_S,
    poll_s: float = DEFAULT_POLL_S,
    stats: Optional[Dict[str, int]] = None,
) -> None:
    """Run ``pending`` through persistent stealing workers.

    ``finish(item, result)`` is invoked in the parent exactly once per
    item (store write + progress accounting), in completion order.
    ``stats`` (if given) accumulates ``claims``/``requeues``/
    ``worker_deaths``/``replacements`` counters for tests and benches.
    """
    if stats is None:
        stats = {}
    for name in ("claims", "requeues", "worker_deaths", "replacements"):
        stats.setdefault(name, 0)

    groups: Dict[Hashable, List[Any]] = {}
    for item in pending:
        groups.setdefault(campaign.group_key(item), []).append(item)
    by_index = {item.index: item for item in pending}

    ctx = multiprocessing.get_context()
    task_q = ctx.Queue()
    result_q = ctx.Queue()
    for key, items in groups.items():
        task_q.put((key, items))

    unfinished = dict(groups)
    finished_indices: set = set()
    failures: Dict[Hashable, int] = {}
    procs: Dict[int, Any] = {}
    held: Dict[int, Optional[Hashable]] = {}
    last_seen: Dict[int, float] = {}
    next_id = 0

    def spawn() -> None:
        nonlocal next_id
        wid = next_id
        next_id += 1
        proc = ctx.Process(
            target=_worker_main,
            args=(wid, campaign, task_q, result_q),
            daemon=True,
        )
        proc.start()
        procs[wid] = proc
        held[wid] = None
        last_seen[wid] = time.monotonic()

    def fail_worker(wid: int, why: str) -> None:
        _kill(procs[wid])
        key = held.get(wid)
        procs.pop(wid, None)
        held.pop(wid, None)
        last_seen.pop(wid, None)
        stats["worker_deaths"] += 1
        if key is not None and key in unfinished:
            failures[key] = failures.get(key, 0) + 1
            if failures[key] >= max_attempts:
                raise CampaignError(
                    f"campaign {campaign.name!r}: group {key!r} {why} "
                    f"{max_attempts} time(s); giving up"
                )
            task_q.put((key, groups[key]))
            stats["requeues"] += 1
        spawn()
        stats["replacements"] += 1

    for _ in range(min(workers, max(1, len(groups)))):
        spawn()

    idle_since: Optional[float] = None
    try:
        while unfinished:
            try:
                kind, wid, key, payload = result_q.get(timeout=poll_s)
            except queue.Empty:
                kind = None
            if kind is not None:
                if wid in last_seen:
                    last_seen[wid] = time.monotonic()
                if kind == "claim":
                    if wid in held:
                        held[wid] = key
                    stats["claims"] += 1
                elif kind == "item":
                    index, result = payload
                    # A requeued group can race its original worker;
                    # first completion wins (identical content anyway).
                    if index not in finished_indices:
                        finished_indices.add(index)
                        finish(by_index[index], result)
                elif kind == "done":
                    if wid in held:
                        held[wid] = None
                    unfinished.pop(key, None)
                elif kind == "error":
                    exc, text = payload
                    if exc is not None:
                        raise exc
                    raise CampaignError(
                        f"campaign {campaign.name!r}: group {key!r} raised:\n{text}"
                    )
                idle_since = None
                continue

            now = time.monotonic()
            for wid in list(procs):
                if not procs[wid].is_alive():
                    fail_worker(wid, "crashed its worker")
                elif (
                    held.get(wid) is not None
                    and now - last_seen[wid] > heartbeat_timeout_s
                ):
                    fail_worker(wid, "hung past the heartbeat timeout")

            # Lost-task recovery: everyone idle yet groups outstanding
            # means a worker died between drawing a task and claiming it.
            if unfinished and all(held.get(wid) is None for wid in procs):
                if idle_since is None:
                    idle_since = now
                elif now - idle_since > max(_IDLE_REQUEUE_S, 4 * poll_s):
                    for key in list(unfinished):
                        failures[key] = failures.get(key, 0) + 1
                        if failures[key] >= max_attempts:
                            raise CampaignError(
                                f"campaign {campaign.name!r}: group {key!r} "
                                f"was lost to dying workers {max_attempts} "
                                f"time(s); giving up"
                            )
                        task_q.put((key, groups[key]))
                        stats["requeues"] += 1
                    idle_since = None
            else:
                idle_since = None
    finally:
        for _ in procs:
            try:
                task_q.put_nowait(None)
            except Exception:  # pragma: no cover - queue already broken
                break
        deadline = time.monotonic() + 2.0
        for proc in procs.values():
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
        for proc in procs.values():
            _kill(proc)
        task_q.cancel_join_thread()
        result_q.cancel_join_thread()


def run_campaign_stealing(
    campaign: Campaign,
    items: Sequence[Any],
    *,
    workers: int = 1,
    store_dir: Optional[str] = None,
    store=None,
    progress: Optional[Callable[[CampaignProgress], None]] = None,
    max_attempts: int = 3,
    heartbeat_timeout_s: float = DEFAULT_HEARTBEAT_TIMEOUT_S,
    poll_s: float = DEFAULT_POLL_S,
    stats: Optional[Dict[str, int]] = None,
) -> Dict[int, Any]:
    """Drop-in, bit-identical alternative to ``run_campaign``.

    Same store scan, resume, inflight-await, and progress semantics —
    only the fan-out strategy differs. ``workers == 1`` runs in-process,
    exactly like ``run_campaign``.
    """
    run = _CampaignRun(
        campaign, items, store_dir=store_dir, store=store, progress=progress
    )

    def execute(batch: List[Any]) -> None:
        if not batch:
            return
        if workers == 1:
            for item in batch:
                run.finish(item, campaign.run_item(item))
        else:
            run_stealing(
                campaign,
                batch,
                workers,
                run.finish,
                max_attempts=max_attempts,
                heartbeat_timeout_s=heartbeat_timeout_s,
                poll_s=poll_s,
                stats=stats,
            )

    pending, inflight = run.scan()
    execute(pending)
    if inflight:
        execute(run.await_inflight(inflight))
    return run.results
