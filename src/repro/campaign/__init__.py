"""The generic campaign core: one implementation of every campaign mechanism.

The repo runs three campaign families — Monte-Carlo reliability shards
(:mod:`repro.faultsim.parallel`), cycle-level performance cells
(:mod:`repro.perf.campaign`), and Row-Hammer attack sweeps
(:mod:`repro.rowhammer.sweep`). All three are thin adapters over this
package:

- :mod:`repro.campaign.engine` — the :class:`Campaign` work-item
  contract and the retrying, group-scheduling, store-backed executor
  (:func:`run_campaign`);
- :mod:`repro.campaign.scheduler` — the work-stealing alternative
  fan-out (persistent workers, heartbeat supervision), selected by
  ``run_campaign(..., scheduler="steal")`` / ``REPRO_SCHEDULER``;
- :mod:`repro.campaign.store` — the atomic, fingerprint-verified JSON
  :class:`ResultStore` with its append-only completion index;
- :mod:`repro.campaign.server` / :mod:`repro.campaign.client` — the
  same store served over TCP (:class:`RemoteResultStore`) plus the
  async job front door (``python -m repro serve`` / ``submit``);
- :mod:`repro.campaign.progress` — shared rate/ETA/fraction progress
  accounting and the repo-wide worker-count resolution
  (``REPRO_WORKERS`` generic fallback).

See the "campaign layer" section of ``docs/architecture.md`` for the
adapter diagram, the add-a-campaign recipe, and the distributed
(serve-a-campaign) recipe.
"""

from repro.campaign.client import CampaignClient, RemoteResultStore
from repro.campaign.engine import (
    SCHEDULER_ENV,
    SCHEDULERS,
    Campaign,
    CampaignError,
    resolve_scheduler,
    run_campaign,
)
from repro.campaign.progress import (
    GENERIC_WORKERS_ENV,
    CampaignProgress,
    ProgressBase,
    ProgressCallback,
    resolve_workers,
)
from repro.campaign.scheduler import run_campaign_stealing
from repro.campaign.server import BackgroundServer, CampaignServer, ServerActivity
from repro.campaign.store import (
    INDEX_NAME,
    STORE_VERSION,
    ResultStore,
    atomic_write_json,
    fingerprint_digest,
    read_index,
    summarize_index,
)

__all__ = [
    "Campaign",
    "CampaignError",
    "run_campaign",
    "run_campaign_stealing",
    "resolve_scheduler",
    "SCHEDULER_ENV",
    "SCHEDULERS",
    "RemoteResultStore",
    "CampaignClient",
    "CampaignServer",
    "BackgroundServer",
    "ServerActivity",
    "CampaignProgress",
    "ProgressBase",
    "ProgressCallback",
    "GENERIC_WORKERS_ENV",
    "resolve_workers",
    "ResultStore",
    "STORE_VERSION",
    "INDEX_NAME",
    "atomic_write_json",
    "fingerprint_digest",
    "read_index",
    "summarize_index",
]
