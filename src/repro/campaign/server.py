"""The asyncio campaign server: shared result store + job front door.

One server process owns one local :class:`ResultStore` directory and
exposes it over the length-prefixed JSON protocol of
:mod:`repro.campaign.wire`, turning the store from a per-host cache into
a shared one: every ``load`` verifies the caller's *full* fingerprint
server-side (the exact :meth:`ResultStore.load` semantics — ``absent``/
``corrupt``/``stale`` rejection reporting included), and every ``store``
goes through the same atomic-write path and append-only index as a local
campaign.

Two coordination mechanisms ride on top of the raw store contract so
concurrent clients *divide* a grid instead of racing it:

- **claims** — a client about to compute a missing cell claims it
  first; a second client asking for the same cell is told it is
  ``inflight`` and can wait for the result instead of recomputing.
  Claims are tied to the claimant's connection: a client that dies
  releases its claims the moment its socket closes (waiters wake and
  re-claim), with a lease timeout as the backstop for wedged-but-alive
  clients.
- **jobs** — an async front door (``submit`` / ``job-status`` /
  ``job-results`` / ``watch``) that runs whole campaigns
  (``hammer-sweep`` / ``perf`` / ``faultsim``) server-side against the
  shared store, streaming progress events to any number of watchers.
  Jobs execute on an executor thread; the asyncio loop stays free to
  serve store traffic, which is exactly why the shared
  :class:`ServerActivity` counters below are mutated through
  ``ProgressBase.advance`` (thread-safe) rather than bare attribute
  writes.

Start one with ``python -m repro serve --store-dir DIR`` or embed a
:class:`BackgroundServer` (tests, smokes).
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro.campaign.progress import ProgressBase, resolve_workers
from repro.campaign.store import ResultStore, summarize_index
from repro.campaign.wire import (
    DEFAULT_PORT,
    PROTOCOL_VERSION,
    read_frame,
    write_frame,
)

#: Backstop claim lease: a claim older than this is re-grantable even if
#: the holder's connection is still open (wedged client). Connection
#: close releases claims immediately; this only catches the rest.
DEFAULT_LEASE_S = 600.0

#: Server-side cap on one blocking ``load(wait=...)``; clients loop.
WAIT_CAP_S = 30.0


@dataclass
class ServerActivity(ProgressBase):
    """Live request/job counters, mutated from several threads at once.

    The asyncio loop thread accounts store traffic while job executor
    threads account campaign completions — all through the thread-safe
    ``advance``/``update``/``snapshot`` the shared :class:`ProgressBase`
    provides. ``items_*``/``units_*`` denominate in requests so the
    inherited rate/describe machinery reads naturally.
    """

    items_done: int = 0
    items_total: int = 0
    items_from_store: int = 0
    units_done: int = 0
    units_total: int = 0
    elapsed_s: float = 0.0
    rejected_corrupt: int = 0
    rejected_stale: int = 0
    loads: int = 0
    stores: int = 0
    claims_granted: int = 0
    claims_denied: int = 0
    jobs_submitted: int = 0
    jobs_finished: int = 0
    jobs_failed: int = 0

    ITEM_NOUN = "request"
    RATE_NOUN = "requests"
    RATE_FMT = ",.1f"

    def _trailer(self) -> str:
        return (
            f"loads {self.loads} stores {self.stores} "
            f"jobs {self.jobs_finished}/{self.jobs_submitted}"
        )


def _progress_payload(snap) -> Dict[str, Any]:
    """Any campaign family's progress snapshot -> one wire-safe dict."""
    return {
        "items_done": int(snap.items_done),
        "items_total": int(snap.items_total),
        "items_from_store": int(snap.items_from_store),
        "units_done": int(snap.units_done),
        "units_total": int(snap.units_total),
        "elapsed_s": float(snap.elapsed_s),
        "describe": snap.describe(),
    }


# -- job kinds -------------------------------------------------------------------
#
# Each runs a whole campaign inside an executor thread, cells landing in
# the server's store directory so store clients and later jobs share
# them. Signature: (server, params, progress_callback) -> JSON results.


def _job_hammer_sweep(server: "CampaignServer", params: dict, progress):
    from repro.rowhammer import sweep

    cells = sweep.plan_sweep(
        attacks=tuple(params.get("attacks") or sweep.DEFAULT_ATTACKS),
        mitigations=tuple(params.get("mitigations") or sweep.DEFAULT_MITIGATIONS),
        schemes=tuple(params.get("schemes") or sweep.DEFAULT_SCHEMES),
        seeds=tuple(params.get("seeds") or (3,)),
    )
    outcomes = sweep.run_sweep(
        cells,
        workers=resolve_workers(params.get("workers"), config_workers=server.workers),
        cache_dir=server.store_dir,
        progress=progress,
    )
    return [outcomes[cell.key].to_json() for cell in cells]


def _job_perf(server: "CampaignServer", params: dict, progress):
    from repro.perf.campaign import run_comparison_parallel
    from repro.perf.model import PerfConfig, geomean_slowdown_percent
    from repro.perf.organizations import organization_for

    scheme = params.get("scheme", "safeguard-secded")
    org = organization_for(scheme, int(params.get("mac_latency", 8)))
    defaults = PerfConfig()
    config = PerfConfig(
        n_cores=int(params.get("n_cores", defaults.n_cores)),
        instructions_per_core=int(
            params.get("instructions_per_core", defaults.instructions_per_core)
        ),
        warmup_instructions=int(
            params.get("warmup_instructions", defaults.warmup_instructions)
        ),
        seed=int(params.get("seed", defaults.seed)),
        engine=params.get("engine"),
    )
    results = run_comparison_parallel(
        [org],
        workloads=params.get("workloads"),
        config=config,
        workers=resolve_workers(params.get("workers"), config_workers=server.workers),
        cache_dir=server.store_dir,
        progress=progress,
    )
    return {
        "scheme": scheme,
        "per_workload": [
            {"workload": r.workload, "slowdown_percent": r.slowdown_percent(org.name)}
            for r in results
        ],
        "geomean_slowdown_percent": geomean_slowdown_percent(results, org.name),
    }


def _job_faultsim(server: "CampaignServer", params: dict, progress):
    from repro.faultsim.evaluators import evaluator_for
    from repro.faultsim.geometry import X8_SECDED_16GB
    from repro.faultsim.montecarlo import MonteCarloConfig
    from repro.faultsim.parallel import simulate_parallel

    scheme = params.get("scheme", "safeguard-secded")
    seed = int(params.get("seed", 42))
    config = MonteCarloConfig(
        n_modules=int(params.get("n_modules", 2000)),
        seed=seed,
        engine=params.get("engine"),
    )
    geometry = X8_SECDED_16GB
    # Checkpoints keep their one-file-per-shard directory contract, so
    # each faultsim job gets a subdirectory, not the shared cell space.
    checkpoint_dir = os.path.join(
        server.store_dir, f"faultsim-{scheme}-{config.n_modules}-{seed}"
    )
    result = simulate_parallel(
        evaluator_for(scheme, geometry),
        geometry,
        config,
        workers=resolve_workers(params.get("workers"), config_workers=server.workers),
        checkpoint_dir=checkpoint_dir,
        progress=progress,
    )
    return {
        "scheme": result.scheme,
        "n_modules": result.n_modules,
        "n_due": result.n_due,
        "n_sdc": result.n_sdc,
        "final_fail_probability": result.final_fail_probability,
        "probability_at_years": {
            str(y): result.probability_at_years(y) for y in range(1, 8)
        },
    }


JOB_KINDS = {
    "hammer-sweep": _job_hammer_sweep,
    "perf": _job_perf,
    "faultsim": _job_faultsim,
}


@dataclass
class _Job:
    job_id: str
    kind: str
    params: dict
    state: str = "queued"  # queued -> running -> done | error
    error: Optional[str] = None
    results: Any = None
    progress: Optional[Dict[str, Any]] = None
    watchers: List[asyncio.Queue] = field(default_factory=list)

    def describe(self) -> Dict[str, Any]:
        return {
            "job": self.job_id,
            "kind": self.kind,
            "state": self.state,
            "error": self.error,
            "progress": self.progress,
        }


class CampaignServer:
    """One store directory served to many clients; see the module doc."""

    def __init__(
        self,
        store_dir: str,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: Optional[int] = None,
        lease_s: float = DEFAULT_LEASE_S,
    ):
        self.store_dir = store_dir
        self.store = ResultStore(store_dir)
        self.host = host
        self.port = port
        #: Default worker count for jobs that don't pin one (resolved
        #: through the standard precedence at job time).
        self.workers = workers
        self.lease_s = lease_s
        self.activity = ServerActivity()
        self.started = time.monotonic()
        self._server: Optional[asyncio.AbstractServer] = None
        self._claims: Dict[str, tuple] = {}  # cell -> (conn_id, deadline)
        self._events: Dict[str, asyncio.Event] = {}
        self._jobs: Dict[str, _Job] = {}
        self._job_tasks: Set[asyncio.Task] = set()
        self._next_conn = 0
        self._next_job = 0

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        for task in list(self._job_tasks):
            task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    async def serve_forever(self) -> None:
        await self.start()
        print(
            f"campaign server on {self.host}:{self.port} "
            f"(store {self.store_dir!r}, jobs: {', '.join(sorted(JOB_KINDS))})",
            flush=True,
        )
        async with self._server:
            await self._server.serve_forever()

    # -- claim bookkeeping -------------------------------------------------------

    def _claim_holder(self, cell: str) -> Optional[int]:
        claim = self._claims.get(cell)
        if claim is None:
            return None
        conn_id, deadline = claim
        if deadline <= time.monotonic():
            del self._claims[cell]
            return None
        return conn_id

    def _release(self, cell: str) -> None:
        self._claims.pop(cell, None)
        event = self._events.pop(cell, None)
        if event is not None:
            event.set()

    def _release_connection(self, conn_id: int) -> None:
        for cell in [c for c, (cid, _) in self._claims.items() if cid == conn_id]:
            self._release(cell)

    # -- request handling --------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        conn_id = self._next_conn
        self._next_conn += 1
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except (ConnectionError, ValueError):
                    break
                if request is None:
                    break
                self.activity.advance(items_total=1, units_total=1)
                try:
                    response = await self._dispatch(conn_id, request, writer)
                except Exception as error:  # noqa: BLE001 - protocol boundary
                    response = {
                        "ok": False,
                        "error": f"{type(error).__name__}: {error}",
                    }
                self.activity.advance(items_done=1, units_done=1)
                if response is not None:
                    try:
                        await write_frame(writer, response)
                    except (ConnectionError, OSError):
                        break
        finally:
            self._release_connection(conn_id)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # CancelledError: server shutdown raced this connection's
                # close; the handler is finished either way.
                pass

    async def _dispatch(self, conn_id: int, request: dict, writer):
        op = request.get("op")
        if op == "ping":
            return {
                "ok": True,
                "version": PROTOCOL_VERSION,
                "store_dir": self.store_dir,
                "uptime_s": time.monotonic() - self.started,
            }
        if op == "load":
            return await self._op_load(conn_id, request)
        if op == "claim":
            return self._op_claim(conn_id, request)
        if op == "release":
            cell = str(request["cell"])
            if self._claim_holder(cell) == conn_id:
                self._release(cell)
            return {"ok": True}
        if op == "store":
            return self._op_store(request)
        if op == "status":
            return {"ok": True, "summary": summarize_index(self.store_dir)}
        if op == "stats":
            return self._op_stats()
        if op == "submit":
            return self._op_submit(request)
        if op == "job-status":
            job = self._jobs.get(str(request.get("job")))
            if job is None:
                return {"ok": False, "error": f"unknown job {request.get('job')!r}"}
            return {"ok": True, **job.describe()}
        if op == "job-results":
            job = self._jobs.get(str(request.get("job")))
            if job is None:
                return {"ok": False, "error": f"unknown job {request.get('job')!r}"}
            if job.state != "done":
                return {"ok": False, "error": f"job {job.job_id} is {job.state}"}
            return {"ok": True, "job": job.job_id, "results": job.results}
        if op == "jobs":
            return {
                "ok": True,
                "jobs": [job.describe() for job in self._jobs.values()],
            }
        if op == "watch":
            return await self._op_watch(request, writer)
        return {"ok": False, "error": f"unknown op {op!r}"}

    async def _op_load(self, conn_id: int, request: dict):
        cell = str(request["cell"])
        fingerprint = request["fingerprint"]
        result, reason = self.store.load(cell, fingerprint)
        if (
            reason == "absent"
            and request.get("wait")
            and self._claim_holder(cell) not in (None, conn_id)
        ):
            event = self._events.setdefault(cell, asyncio.Event())
            wait_s = min(float(request.get("wait_s", 5.0)), WAIT_CAP_S)
            try:
                await asyncio.wait_for(event.wait(), timeout=wait_s)
            except asyncio.TimeoutError:
                pass
            result, reason = self.store.load(cell, fingerprint)
        counters = {"loads": 1}
        if reason is None:
            counters["items_from_store"] = 1
        elif reason == "corrupt":
            counters["rejected_corrupt"] = 1
        elif reason == "stale":
            counters["rejected_stale"] = 1
        self.activity.advance(**counters)
        return {"ok": True, "result": result, "reason": reason}

    def _op_claim(self, conn_id: int, request: dict):
        cell = str(request["cell"])
        holder = self._claim_holder(cell)
        if holder is not None and holder != conn_id:
            self.activity.advance(claims_denied=1)
            return {"ok": True, "granted": False}
        self._claims[cell] = (conn_id, time.monotonic() + self.lease_s)
        self.activity.advance(claims_granted=1)
        return {"ok": True, "granted": True}

    def _op_store(self, request: dict):
        self.store.store(
            str(request["cell"]),
            request["fingerprint"],
            request.get("result"),
            campaign=request.get("campaign"),
            key=request.get("key"),
            failures=int(request.get("failures", 0)),
        )
        # The result exists now: whoever held the claim, drop it and
        # wake every load(wait=...) parked on this cell.
        self._release(str(request["cell"]))
        self.activity.advance(stores=1)
        return {"ok": True}

    def _op_stats(self):
        self.activity.update(elapsed_s=time.monotonic() - self.started)
        snapshot = asdict(self.activity.snapshot())
        return {
            "ok": True,
            "activity": snapshot,
            "describe": self.activity.snapshot().describe(),
            "claims": len(self._claims),
            "jobs": {
                state: sum(1 for j in self._jobs.values() if j.state == state)
                for state in ("queued", "running", "done", "error")
            },
        }

    # -- jobs --------------------------------------------------------------------

    def _op_submit(self, request: dict):
        kind = str(request.get("kind"))
        if kind not in JOB_KINDS:
            return {
                "ok": False,
                "error": f"unknown job kind {kind!r}; known: "
                f"{', '.join(sorted(JOB_KINDS))}",
            }
        params = request.get("params") or {}
        if not isinstance(params, dict):
            return {"ok": False, "error": "params must be an object"}
        job = _Job(job_id=f"job-{self._next_job:04d}", kind=kind, params=params)
        self._next_job += 1
        self._jobs[job.job_id] = job
        self.activity.advance(jobs_submitted=1)
        task = asyncio.get_running_loop().create_task(self._run_job(job))
        self._job_tasks.add(task)
        task.add_done_callback(self._job_tasks.discard)
        return {"ok": True, "job": job.job_id, "state": job.state}

    async def _run_job(self, job: _Job) -> None:
        loop = asyncio.get_running_loop()
        job.state = "running"
        self._notify(job, {"event": "state", **job.describe()})

        def on_progress(snap) -> None:  # called from the executor thread
            payload = _progress_payload(snap)
            loop.call_soon_threadsafe(self._job_progress, job, payload)

        try:
            job.results = await loop.run_in_executor(
                None, JOB_KINDS[job.kind], self, job.params, on_progress
            )
            job.state = "done"
            self.activity.advance(jobs_finished=1)
        except asyncio.CancelledError:  # server shutdown
            job.state = "error"
            job.error = "server shut down"
            raise
        except Exception as error:  # noqa: BLE001 - job boundary
            job.state = "error"
            job.error = f"{type(error).__name__}: {error}"
            self.activity.advance(jobs_finished=1, jobs_failed=1)
        finally:
            self._notify(job, {"event": "end", **job.describe()})

    def _job_progress(self, job: _Job, payload: Dict[str, Any]) -> None:
        job.progress = payload
        self._notify(job, {"event": "progress", "job": job.job_id, **payload})

    def _notify(self, job: _Job, event: Dict[str, Any]) -> None:
        for queue in list(job.watchers):
            queue.put_nowait(event)

    async def _op_watch(self, request: dict, writer):
        job = self._jobs.get(str(request.get("job")))
        if job is None:
            return {"ok": False, "error": f"unknown job {request.get('job')!r}"}
        queue: asyncio.Queue = asyncio.Queue()
        job.watchers.append(queue)
        try:
            await write_frame(writer, {"ok": True, **job.describe()})
            if job.state in ("done", "error"):
                await write_frame(writer, {"event": "end", **job.describe()})
                return None
            while True:
                event = await queue.get()
                await write_frame(writer, event)
                if event.get("event") == "end":
                    return None
        finally:
            if queue in job.watchers:
                job.watchers.remove(queue)


class BackgroundServer:
    """A :class:`CampaignServer` on a daemon thread (tests and smokes).

    ``start()`` blocks until the listening port is known; ``stop()``
    shuts the loop down. Usable as a context manager.
    """

    def __init__(self, store_dir: str, **kwargs):
        self.server = CampaignServer(store_dir, **kwargs)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    @property
    def url(self) -> str:
        return f"{self.server.host}:{self.server.port}"

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="campaign-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=15.0):
            raise RuntimeError("campaign server failed to start in time")
        if self._error is not None:
            raise RuntimeError(f"campaign server failed: {self._error!r}")
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # pragma: no cover - startup failures
            self._error = error
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self.server.start()
        self._ready.set()
        await self._stop.wait()
        await self.server.close()

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:  # loop already closed
                pass
        if self._thread is not None:
            self._thread.join(timeout=15.0)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def run_server(
    store_dir: str,
    *,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    workers: Optional[int] = None,
) -> None:
    """Blocking entry point for ``python -m repro serve``."""
    server = CampaignServer(store_dir, host=host, port=port, workers=workers)
    try:
        asyncio.run(server.serve_forever())
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
