"""The domain-generic campaign executor.

A *campaign* is a grid of independent, deterministic work items — Monte
Carlo shards, performance cells, Row-Hammer sweep points — each fully
described by a science fingerprint. This module owns every mechanism
those campaigns share, exactly once:

- **store scan** — verified results load from the :class:`ResultStore`
  (rejections counted by reason) so a killed campaign resumes; stores
  that coordinate several clients (:class:`repro.campaign.client.
  RemoteResultStore`) may answer ``"inflight"`` — *another client is
  computing this cell* — and those items are awaited after the local
  batch instead of recomputed;
- **fan-out** — pending items go to worker processes as *groups*
  (``Campaign.group_key``), so engines whose items share expensive
  per-process state (the perf engine's memoized content pass, the
  sweep's per-attack simulation) keep that sharing under any worker
  count. Two schedulers implement the fan-out: ``"pool"`` (a
  ``ProcessPoolExecutor`` round per retry attempt, the historical
  default) and ``"steal"`` (persistent workers pulling groups from a
  shared queue with heartbeat/timeout supervision; see
  :mod:`repro.campaign.scheduler`);
- **retry** — a worker crash (``BrokenProcessPool`` under the pool
  scheduler, a dead or hung worker process under the stealing one)
  re-runs the unfinished groups with a bounded per-group attempt
  budget; a group that keeps killing workers eventually raises
  :class:`CampaignError`. Pool-scheduler retry rounds back off
  exponentially with bounded, seedable jitter so simultaneous retries
  against a shared store don't stampede it. Deterministic exceptions
  raised *by* an item propagate immediately (retrying them cannot
  help);
- **determinism** — results are keyed by item index, every item is a
  pure function of its fingerprint, and loaded cells are verified in
  full, so the returned mapping is bit-identical for any worker count,
  any scheduler, and any completion/steal order;
- **progress** — a :class:`CampaignProgress` snapshot after every
  completed or store-loaded item.

Domain engines subclass :class:`Campaign` and stay thin: identity
(key/fingerprint/file name), the ``run_item`` payload, and result
(de)serialization. The campaign object is pickled to workers, so it
should carry shared configuration only; bulky per-item inputs belong on
the items themselves.
"""

from __future__ import annotations

import os
import random
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.campaign.progress import CampaignProgress
from repro.campaign.store import ResultStore, fingerprint_digest

#: Environment fallback for the fan-out scheduler when the call does not
#: pin one: ``pool`` (fresh executor per retry round) or ``steal``
#: (persistent work-stealing workers; :mod:`repro.campaign.scheduler`).
SCHEDULER_ENV = "REPRO_SCHEDULER"

#: The fan-out schedulers :func:`run_campaign` can dispatch to.
SCHEDULERS = ("pool", "steal")


class CampaignError(RuntimeError):
    """A work group exhausted its crash-retry budget."""


class Campaign:
    """Domain contract for one campaign family.

    Required: :meth:`fingerprint` and :meth:`run_item`. Everything else
    has a sensible default. Instances must be picklable (they travel to
    pool workers) and ``run_item`` must be deterministic in the item's
    fingerprint — that is what makes the store sound and the output
    worker-count-invariant.
    """

    #: Campaign family name, recorded in the store's append-only index.
    name = "campaign"

    #: Whether completed cells are appended to the store index. Disabled
    #: by stores whose exact directory contents are contractual.
    index_results = True

    # -- identity ----------------------------------------------------------------

    def fingerprint(self, item) -> dict:
        """Everything that determines the item's result, as a JSON dict."""
        raise NotImplementedError

    def item_key(self, item) -> Any:
        """JSON-able stable identity recorded in the index."""
        key = getattr(item, "key", None)
        return list(key) if isinstance(key, tuple) else (key if key is not None else item.index)

    def cell_name(self, item, fingerprint: dict) -> str:
        """Store file name for the item (must be unique per campaign)."""
        return f"{self.name}-{fingerprint_digest(fingerprint)}.json"

    def group_key(self, item) -> Hashable:
        """Items with equal keys run in the same worker task (one by
        default: no grouping)."""
        return item.index

    # -- execution ---------------------------------------------------------------

    def run_item(self, item) -> Any:
        """Compute one item's result (executes inside a worker)."""
        raise NotImplementedError

    # -- persistence -------------------------------------------------------------

    def serialize_result(self, item, result) -> Any:
        """Result -> JSON-able payload (identity by default)."""
        return result

    def deserialize_result(self, item, payload) -> Any:
        """JSON payload -> result (identity by default). Raising
        ``ValueError``/``KeyError``/``TypeError`` marks the cell corrupt
        and recomputes it."""
        return payload

    # -- progress accounting -----------------------------------------------------

    def item_units(self, item) -> int:
        """Work units the item represents (rate/ETA denomination)."""
        return 1

    def result_failures(self, result) -> int:
        """Failure events in a result (surfaced in progress snapshots
        and recorded on the store's index entries)."""
        return 0


def _run_group(campaign: Campaign, items: Sequence[Any]) -> List[Any]:
    """Worker entry point (module-level so it pickles): one group."""
    return [(item.index, campaign.run_item(item)) for item in items]


def resolve_scheduler(scheduler: Optional[str] = None) -> str:
    """Explicit argument > ``REPRO_SCHEDULER`` > ``"pool"``."""
    if scheduler is None:
        scheduler = os.environ.get(SCHEDULER_ENV, "").strip() or "pool"
    if scheduler not in SCHEDULERS:
        raise ValueError(
            f"unknown scheduler {scheduler!r}; known: {', '.join(SCHEDULERS)}"
        )
    return scheduler


class _CampaignRun:
    """Shared bookkeeping for one campaign execution, whatever the
    scheduler: the store scan, per-item completion accounting (store
    write + progress snapshot), and the await loop for cells another
    client is computing."""

    def __init__(
        self,
        campaign: Campaign,
        items: Sequence[Any],
        *,
        store_dir: Optional[str],
        store,
        progress: Optional[Callable[[CampaignProgress], None]],
    ):
        self.campaign = campaign
        self.items = list(items)
        self.fingerprints = {
            item.index: campaign.fingerprint(item) for item in self.items
        }
        if store is None and store_dir:
            store = ResultStore(store_dir, index_results=campaign.index_results)
        self.store = store
        self.progress = progress
        self.results: Dict[int, Any] = {}
        self.state = {
            "from_store": 0,
            "units_done": 0,
            "failures": 0,
            "rejected_corrupt": 0,
            "rejected_stale": 0,
        }
        self.units_total = sum(campaign.item_units(item) for item in self.items)
        self.started = time.monotonic()

    def report(self) -> None:
        if self.progress is None:
            return
        self.progress(
            CampaignProgress(
                items_done=len(self.results),
                items_total=len(self.items),
                items_from_store=self.state["from_store"],
                units_done=self.state["units_done"],
                units_total=self.units_total,
                failures=self.state["failures"],
                elapsed_s=time.monotonic() - self.started,
                rejected_corrupt=self.state["rejected_corrupt"],
                rejected_stale=self.state["rejected_stale"],
            )
        )

    def account(self, item, result) -> None:
        self.results[item.index] = result
        self.state["units_done"] += self.campaign.item_units(item)
        self.state["failures"] += self.campaign.result_failures(result)

    def cell_name(self, item) -> str:
        return self.campaign.cell_name(item, self.fingerprints[item.index])

    def _try_load(self, item, payload) -> Optional[Any]:
        """Deserialize a stored payload; ``None`` marks it corrupt."""
        try:
            return self.campaign.deserialize_result(item, payload)
        except (ValueError, KeyError, TypeError, IndexError):
            return None

    def scan(self) -> Tuple[List[Any], List[Any]]:
        """Load verified cells; returns ``(pending, inflight)`` items.

        ``inflight`` items are cells a coordinating store reported
        another client is currently computing; they are awaited via
        :meth:`await_inflight` after the local batch runs.
        """
        pending: List[Any] = []
        inflight: List[Any] = []
        for item in self.items:
            reason: Optional[str] = "absent"
            payload = None
            if self.store is not None:
                payload, reason = self.store.load(
                    self.cell_name(item), self.fingerprints[item.index]
                )
            if reason is None:
                result = self._try_load(item, payload)
                if result is None:
                    reason = "corrupt"
                else:
                    self.account(item, result)
                    self.state["from_store"] += 1
                    self.report()
                    continue
            if reason == "inflight" and hasattr(self.store, "load_wait"):
                inflight.append(item)
                continue
            if reason == "corrupt":
                self.state["rejected_corrupt"] += 1
            elif reason == "stale":
                self.state["rejected_stale"] += 1
            pending.append(item)
        return pending, inflight

    def await_inflight(self, inflight: Sequence[Any]) -> List[Any]:
        """Block on cells other clients were computing.

        Each waits until the cell is stored (a shared-store cache hit)
        or until this client wins the claim for it (the producer died or
        timed out) — those come back as a second pending batch.
        """
        pending: List[Any] = []
        for item in inflight:
            payload, reason = self.store.load_wait(
                self.cell_name(item), self.fingerprints[item.index]
            )
            result = self._try_load(item, payload) if reason is None else None
            if result is not None:
                self.account(item, result)
                self.state["from_store"] += 1
                self.report()
            else:
                pending.append(item)
        return pending

    def finish(self, item, result) -> None:
        """Account one computed item: store, index, progress."""
        self.account(item, result)
        if self.store is not None:
            fingerprint = self.fingerprints[item.index]
            self.store.store(
                self.cell_name(item),
                fingerprint,
                self.campaign.serialize_result(item, result),
                campaign=self.campaign.name if self.campaign.index_results else None,
                key=self.campaign.item_key(item),
                failures=self.campaign.result_failures(result),
            )
        self.report()


def run_campaign(
    campaign: Campaign,
    items: Sequence[Any],
    *,
    workers: int = 1,
    store_dir: Optional[str] = None,
    store=None,
    progress: Optional[Callable[[CampaignProgress], None]] = None,
    max_attempts: int = 3,
    backoff_s: float = 0.5,
    max_backoff_s: float = 4.0,
    backoff_jitter: float = 0.25,
    jitter_seed: Optional[int] = None,
    scheduler: Optional[str] = None,
) -> Dict[int, Any]:
    """Run every item; returns results keyed by ``item.index``.

    ``workers == 1`` runs items in-process in index order (no pool),
    which still exercises the store and progress reporting. The output
    mapping is independent of worker count, scheduler, and completion
    order.

    ``store`` accepts a ready store object (anything with the
    :class:`ResultStore` ``load``/``store`` contract — e.g. a
    :class:`repro.campaign.client.RemoteResultStore` sharing cells over
    the network); ``store_dir`` builds a local directory store.
    ``scheduler`` picks the fan-out strategy (``"pool"``/``"steal"``;
    default ``REPRO_SCHEDULER`` or ``"pool"``). Pool-scheduler crash
    retries back off exponentially, stretched by a bounded random
    jitter in ``[1, 1 + backoff_jitter]`` — seedable via
    ``jitter_seed`` so tests are deterministic — so simultaneous group
    retries don't stampede a shared store.
    """
    scheduler = resolve_scheduler(scheduler)
    run = _CampaignRun(
        campaign, items, store_dir=store_dir, store=store, progress=progress
    )

    def execute(batch: List[Any]) -> None:
        if not batch:
            return
        if workers == 1:
            for item in batch:
                run.finish(item, campaign.run_item(item))
        elif scheduler == "steal":
            from repro.campaign.scheduler import run_stealing

            run_stealing(
                campaign,
                batch,
                workers,
                run.finish,
                max_attempts=max_attempts,
            )
        else:
            _fan_out(
                campaign,
                batch,
                workers,
                run.finish,
                max_attempts=max_attempts,
                backoff_s=backoff_s,
                max_backoff_s=max_backoff_s,
                backoff_jitter=backoff_jitter,
                jitter_seed=jitter_seed,
            )

    pending, inflight = run.scan()
    execute(pending)
    if inflight:
        execute(run.await_inflight(inflight))
    return run.results


def _fan_out(
    campaign: Campaign,
    pending: Sequence[Any],
    workers: int,
    finish: Callable[[Any, Any], None],
    *,
    max_attempts: int,
    backoff_s: float,
    max_backoff_s: float,
    backoff_jitter: float = 0.25,
    jitter_seed: Optional[int] = None,
) -> None:
    """Pool fan-out with group scheduling and crash retry."""
    groups: Dict[Hashable, List[Any]] = {}
    for item in pending:
        groups.setdefault(campaign.group_key(item), []).append(item)

    rng = random.Random(jitter_seed)
    remaining = dict(groups)
    attempts = {key: 0 for key in groups}
    while remaining:
        for key in remaining:
            attempts[key] += 1
        crashed = False
        with ProcessPoolExecutor(
            max_workers=min(workers, len(remaining))
        ) as pool:
            futures = {
                pool.submit(_run_group, campaign, group): key
                for key, group in remaining.items()
            }
            outstanding = set(futures)
            while outstanding and not crashed:
                completed, outstanding = wait(
                    outstanding, return_when=FIRST_COMPLETED
                )
                for future in completed:
                    key = futures[future]
                    try:
                        pairs = future.result()
                    except BrokenExecutor:
                        # The pool is dead; whatever is still in
                        # `remaining` (this group included) retries in a
                        # fresh pool. Groups already finished this round
                        # were removed, so nothing double-finishes.
                        crashed = True
                        break
                    by_index = {item.index: item for item in remaining[key]}
                    for index, result in pairs:
                        finish(by_index[index], result)
                    del remaining[key]
        if not remaining:
            return
        if not crashed:  # pragma: no cover - defensive
            raise CampaignError("pool exited with unfinished groups")
        exhausted = [key for key in remaining if attempts[key] >= max_attempts]
        if exhausted:
            raise CampaignError(
                f"campaign {campaign.name!r}: groups {exhausted!r} crashed "
                f"the worker pool {max_attempts} time(s); giving up"
            )
        retry = max(attempts[key] for key in remaining)
        base = min(backoff_s * (2 ** (retry - 1)), max_backoff_s)
        # Stretch (never shorten) by bounded jitter so simultaneous
        # retrying campaigns desynchronize instead of stampeding a
        # shared store in lock step.
        time.sleep(base * (1.0 + max(0.0, backoff_jitter) * rng.random()))
