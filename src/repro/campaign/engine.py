"""The domain-generic campaign executor.

A *campaign* is a grid of independent, deterministic work items — Monte
Carlo shards, performance cells, Row-Hammer sweep points — each fully
described by a science fingerprint. This module owns every mechanism
those campaigns share, exactly once:

- **store scan** — verified results load from the :class:`ResultStore`
  (rejections counted by reason) so a killed campaign resumes;
- **fan-out** — pending items go to a ``ProcessPoolExecutor`` as
  *groups* (``Campaign.group_key``), so engines whose items share
  expensive per-process state (the perf engine's memoized content pass,
  the sweep's per-attack simulation) keep that sharing under any worker
  count;
- **retry** — a worker crash (``BrokenProcessPool``) re-runs the
  unfinished groups in a fresh pool with bounded exponential backoff;
  a group that keeps killing workers eventually raises
  :class:`CampaignError`. Deterministic exceptions raised *by* an item
  propagate immediately (retrying them cannot help);
- **determinism** — results are keyed by item index, every item is a
  pure function of its fingerprint, and loaded cells are verified in
  full, so the returned mapping is bit-identical for any worker count
  and any completion order;
- **progress** — a :class:`CampaignProgress` snapshot after every
  completed or store-loaded item.

Domain engines subclass :class:`Campaign` and stay thin: identity
(key/fingerprint/file name), the ``run_item`` payload, and result
(de)serialization. The campaign object is pickled to workers, so it
should carry shared configuration only; bulky per-item inputs belong on
the items themselves.
"""

from __future__ import annotations

import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence

from repro.campaign.progress import CampaignProgress
from repro.campaign.store import ResultStore, fingerprint_digest


class CampaignError(RuntimeError):
    """A work group exhausted its crash-retry budget."""


class Campaign:
    """Domain contract for one campaign family.

    Required: :meth:`fingerprint` and :meth:`run_item`. Everything else
    has a sensible default. Instances must be picklable (they travel to
    pool workers) and ``run_item`` must be deterministic in the item's
    fingerprint — that is what makes the store sound and the output
    worker-count-invariant.
    """

    #: Campaign family name, recorded in the store's append-only index.
    name = "campaign"

    #: Whether completed cells are appended to the store index. Disabled
    #: by stores whose exact directory contents are contractual.
    index_results = True

    # -- identity ----------------------------------------------------------------

    def fingerprint(self, item) -> dict:
        """Everything that determines the item's result, as a JSON dict."""
        raise NotImplementedError

    def item_key(self, item) -> Any:
        """JSON-able stable identity recorded in the index."""
        key = getattr(item, "key", None)
        return list(key) if isinstance(key, tuple) else (key if key is not None else item.index)

    def cell_name(self, item, fingerprint: dict) -> str:
        """Store file name for the item (must be unique per campaign)."""
        return f"{self.name}-{fingerprint_digest(fingerprint)}.json"

    def group_key(self, item) -> Hashable:
        """Items with equal keys run in the same worker task (one by
        default: no grouping)."""
        return item.index

    # -- execution ---------------------------------------------------------------

    def run_item(self, item) -> Any:
        """Compute one item's result (executes inside a worker)."""
        raise NotImplementedError

    # -- persistence -------------------------------------------------------------

    def serialize_result(self, item, result) -> Any:
        """Result -> JSON-able payload (identity by default)."""
        return result

    def deserialize_result(self, item, payload) -> Any:
        """JSON payload -> result (identity by default). Raising
        ``ValueError``/``KeyError``/``TypeError`` marks the cell corrupt
        and recomputes it."""
        return payload

    # -- progress accounting -----------------------------------------------------

    def item_units(self, item) -> int:
        """Work units the item represents (rate/ETA denomination)."""
        return 1

    def result_failures(self, result) -> int:
        """Failure events in a result (surfaced in progress snapshots)."""
        return 0


def _run_group(campaign: Campaign, items: Sequence[Any]) -> List[Any]:
    """Worker entry point (module-level so it pickles): one group."""
    return [(item.index, campaign.run_item(item)) for item in items]


def run_campaign(
    campaign: Campaign,
    items: Sequence[Any],
    *,
    workers: int = 1,
    store_dir: Optional[str] = None,
    progress: Optional[Callable[[CampaignProgress], None]] = None,
    max_attempts: int = 3,
    backoff_s: float = 0.5,
    max_backoff_s: float = 4.0,
) -> Dict[int, Any]:
    """Run every item; returns results keyed by ``item.index``.

    ``workers == 1`` runs items in-process in index order (no pool),
    which still exercises the store and progress reporting. The output
    mapping is independent of worker count and completion order.
    """
    items = list(items)
    fingerprints = {item.index: campaign.fingerprint(item) for item in items}
    store = (
        ResultStore(store_dir, index_results=campaign.index_results)
        if store_dir
        else None
    )

    results: Dict[int, Any] = {}
    state = {
        "from_store": 0,
        "units_done": 0,
        "failures": 0,
        "rejected_corrupt": 0,
        "rejected_stale": 0,
    }
    units_total = sum(campaign.item_units(item) for item in items)
    started = time.monotonic()

    def report() -> None:
        if progress is None:
            return
        progress(
            CampaignProgress(
                items_done=len(results),
                items_total=len(items),
                items_from_store=state["from_store"],
                units_done=state["units_done"],
                units_total=units_total,
                failures=state["failures"],
                elapsed_s=time.monotonic() - started,
                rejected_corrupt=state["rejected_corrupt"],
                rejected_stale=state["rejected_stale"],
            )
        )

    def account(item, result) -> None:
        results[item.index] = result
        state["units_done"] += campaign.item_units(item)
        state["failures"] += campaign.result_failures(result)

    pending: List[Any] = []
    for item in items:
        reason: Optional[str] = "absent"
        payload = None
        if store is not None:
            payload, reason = store.load(
                campaign.cell_name(item, fingerprints[item.index]),
                fingerprints[item.index],
            )
        if reason is None:
            try:
                result = campaign.deserialize_result(item, payload)
            except (ValueError, KeyError, TypeError, IndexError):
                reason = "corrupt"
        if reason is None:
            account(item, result)
            state["from_store"] += 1
            report()
        else:
            if reason == "corrupt":
                state["rejected_corrupt"] += 1
            elif reason == "stale":
                state["rejected_stale"] += 1
            pending.append(item)

    def finish(item, result) -> None:
        account(item, result)
        if store is not None:
            fingerprint = fingerprints[item.index]
            store.store(
                campaign.cell_name(item, fingerprint),
                fingerprint,
                campaign.serialize_result(item, result),
                campaign=campaign.name,
                key=campaign.item_key(item),
            )
        report()

    if workers == 1:
        for item in pending:
            finish(item, campaign.run_item(item))
    elif pending:
        _fan_out(
            campaign,
            pending,
            workers,
            finish,
            max_attempts=max_attempts,
            backoff_s=backoff_s,
            max_backoff_s=max_backoff_s,
        )

    return results


def _fan_out(
    campaign: Campaign,
    pending: Sequence[Any],
    workers: int,
    finish: Callable[[Any, Any], None],
    *,
    max_attempts: int,
    backoff_s: float,
    max_backoff_s: float,
) -> None:
    """Pool fan-out with group scheduling and crash retry."""
    groups: Dict[Hashable, List[Any]] = {}
    for item in pending:
        groups.setdefault(campaign.group_key(item), []).append(item)

    remaining = dict(groups)
    attempts = {key: 0 for key in groups}
    while remaining:
        for key in remaining:
            attempts[key] += 1
        crashed = False
        with ProcessPoolExecutor(
            max_workers=min(workers, len(remaining))
        ) as pool:
            futures = {
                pool.submit(_run_group, campaign, group): key
                for key, group in remaining.items()
            }
            outstanding = set(futures)
            while outstanding and not crashed:
                completed, outstanding = wait(
                    outstanding, return_when=FIRST_COMPLETED
                )
                for future in completed:
                    key = futures[future]
                    try:
                        pairs = future.result()
                    except BrokenExecutor:
                        # The pool is dead; whatever is still in
                        # `remaining` (this group included) retries in a
                        # fresh pool. Groups already finished this round
                        # were removed, so nothing double-finishes.
                        crashed = True
                        break
                    by_index = {item.index: item for item in remaining[key]}
                    for index, result in pairs:
                        finish(by_index[index], result)
                    del remaining[key]
        if not remaining:
            return
        if not crashed:  # pragma: no cover - defensive
            raise CampaignError("pool exited with unfinished groups")
        exhausted = [key for key in remaining if attempts[key] >= max_attempts]
        if exhausted:
            raise CampaignError(
                f"campaign {campaign.name!r}: groups {exhausted!r} crashed "
                f"the worker pool {max_attempts} time(s); giving up"
            )
        retry = max(attempts[key] for key in remaining)
        time.sleep(min(backoff_s * (2 ** (retry - 1)), max_backoff_s))
