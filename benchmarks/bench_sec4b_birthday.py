"""Section IV-B: birthday-bound analysis + Monte-Carlo cross-check."""

from conftest import once

from repro.experiments import sec4b_birthday


def test_sec4b_birthday(benchmark):
    analysis, check = once(benchmark, sec4b_birthday.run)
    sec4b_birthday.report((analysis, check))
    assert analysis.faults_for_collision == (1 << 15)  # sqrt(2^30)
    assert analysis.p_secded_superior < 1e-4  # paper: 3.51e-5 scale
    assert analysis.years_to_two_faults > 1000
    assert 1.0 < check.ratio < 1.6  # sqrt(pi/2) ~ 1.25 expected
