"""Table IV: per-fault-mode detect/correct matrix (measured)."""

from conftest import once

from repro.experiments import table4_resiliency


def test_table4_matrix(benchmark):
    scores = once(benchmark, table4_resiliency.run, trials=60, seed=11)
    table4_resiliency.report(scores)
    by = {(s.mode, s.scheme): s for s in scores}
    assert by[("bit", "SECDED")].correct_mark == "yes"
    assert by[("bit", "SafeGuard")].correct_mark == "yes"
    assert by[("column", "SECDED")].correct_mark == "yes"
    assert by[("column", "SafeGuard (no parity)")].correct_mark == "no"
    for (mode, scheme), score in by.items():
        if scheme.startswith("SafeGuard"):
            assert score.silent == 0, (mode, scheme)
