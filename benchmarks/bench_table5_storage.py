"""Table V: DRAM storage overhead comparison."""

from conftest import once

from repro.experiments import table5_storage


def test_table5_storage(benchmark):
    rows = once(benchmark, table5_storage.run)
    table5_storage.report(rows)
    assert [r.sgx_synergy_loss_gb for r in rows] == [2.0, 8.0, 32.0]
    assert all(r.safeguard_usable_gb == r.baseline_gb for r in rows)
