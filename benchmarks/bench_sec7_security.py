"""Section VII: the security-discussion experiments."""

from conftest import once

from repro.core.types import ReadStatus
from repro.experiments import sec7_security
from repro.security.dos import RegionVerdict


def test_sec7_security_discussion(benchmark):
    report = once(benchmark, sec7_security.run)
    sec7_security.report(report)
    # VII-B: DoS attribution separates attackers from background noise.
    assert report.dos_attacker_verdict is RegionVerdict.MALICIOUS
    assert report.dos_background_verdict is RegionVerdict.HEALTHY
    # VII-C: replay accepted at same address only.
    assert report.replay_same_address
    assert report.replay_relocation_detected and report.replay_splice_detected
    assert report.replay_log10_windows > 30
    # VII-D: ECCploit silently corrupts SECDED; SafeGuard converts to DUE.
    assert report.eccploit_secded_silent
    assert report.eccploit_safeguard_status is ReadStatus.DETECTED_UE
    # VII-D: RAMBleed leaks from plain memory, not from TME-encrypted.
    assert report.rambleed_plain_accuracy > 0.8
    assert abs(report.rambleed_tme_accuracy - 0.5) < 0.15
