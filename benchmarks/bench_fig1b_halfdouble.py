"""Figure 1b: breakthrough attack patterns vs. precise mitigations."""

from conftest import once

from repro.experiments import fig1b_attacks


def test_fig1b_attack_matrix(benchmark):
    cells = once(benchmark, fig1b_attacks.run, rh_threshold=1200, budget=340_000)
    fig1b_attacks.report(cells)
    by = {(c.mitigation, c.attack): c for c in cells}
    # The paper's three case studies:
    assert by[("trr", "many-sided(trrespass)")].broke_through  # Case 2
    assert by[("graphene", "half-double")].broke_through  # Case 1
    assert by[("para-stale", "double-sided")].broke_through  # threshold drift
    # And the sanity side: correctly sized mitigations stop classic attacks.
    assert not by[("para", "double-sided")].broke_through
    assert not by[("graphene", "many-sided(trrespass)")].broke_through
