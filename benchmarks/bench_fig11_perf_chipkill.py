"""Figure 11: performance of SafeGuard vs. conventional Chipkill.

The SafeGuard data path is identical in both organizations during
fault-free operation — one MAC check on the read critical path — so the
paper reports the same 0.7% for Figure 11 as for Figure 7. This bench
regenerates the series on the memory-heavy workload subset where any
divergence would show.
"""

from conftest import BENCH_INSTRUCTIONS, BENCH_WARMUP, once

from repro.experiments import perf_figures
from repro.perf.model import PerfConfig

WORKLOADS = ["mcf", "omnetpp", "xalancbmk", "xz", "bwaves", "lbm", "fotonik3d", "roms"]


def test_fig11_safeguard_vs_chipkill(benchmark):
    config = PerfConfig(
        instructions_per_core=BENCH_INSTRUCTIONS, warmup_instructions=BENCH_WARMUP
    )
    figure = once(benchmark, perf_figures.run_fig7, workloads=WORKLOADS, config=config)
    perf_figures.report_per_workload(figure, "Figure 11: SafeGuard vs. Chipkill")
    gmean = figure.gmean_slowdowns()[figure.organizations[0]]
    assert -0.5 < gmean < 4.0
