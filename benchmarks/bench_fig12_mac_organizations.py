"""Figure 12: SafeGuard vs. SGX-style vs. Synergy-style MAC organizations."""

from conftest import BENCH_INSTRUCTIONS, BENCH_WARMUP, once

from repro.experiments import perf_figures
from repro.perf.model import PerfConfig

WORKLOADS = [
    "perlbench", "gcc", "mcf", "omnetpp", "xz",
    "bwaves", "lbm", "wrf", "fotonik3d", "leela",
]


def test_fig12_mac_organizations(benchmark):
    config = PerfConfig(
        instructions_per_core=BENCH_INSTRUCTIONS, warmup_instructions=BENCH_WARMUP
    )
    figure = once(benchmark, perf_figures.run_fig12, workloads=WORKLOADS, config=config)
    perf_figures.report_per_workload(
        figure, "Figure 12: per-line MAC organizations"
    )
    safeguard, sgx, synergy = figure.organizations
    slow = figure.gmean_slowdowns()
    # Paper: 0.7% / 18.7% / 7.8% — the ordering and rough factors.
    assert slow[safeguard] < slow[synergy] < slow[sgx]
    assert slow[sgx] > 8.0
    assert slow[safeguard] < 3.0
