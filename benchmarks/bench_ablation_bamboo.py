"""Ablation (Section VIII): Bamboo-style vertical ECC vs. SafeGuard.

Bamboo ECC [20] spends the same 64 ECC bits on a vertical RS(72,64) code:
stronger *correction* than SafeGuard (4 pin failures vs. 1 bit + 1
column), but keyless — an adversary forges codeword-preserving flips
outright, and the paper's point stands: no linear code provides *strong
detection of arbitrary failures*.
"""

import random

from conftest import once

from repro.core.registry import create
from repro.ecc.bamboo import BambooQPC


def _compare(trials=120, seed=31):
    rng = random.Random(seed)
    bamboo = BambooQPC()
    safeguard = create("safeguard-secded", key=b"bamboo-ablation!")

    # Correction strength: 4 simultaneous pin failures.
    bamboo_4pin = safeguard_4pin = 0
    for t in range(trials):
        line = rng.getrandbits(512)
        _, checks = bamboo.encode(line)
        bad_line, bad_checks = line, checks
        pins = rng.sample(range(64), 4)
        for pin in pins:
            bad_line, bad_checks = bamboo.corrupt_pin(
                bad_line, bad_checks, pin, rng.randrange(1, 256)
            )
        if bamboo.decode(bad_line, bad_checks).data == line:
            bamboo_4pin += 1
        address = 64 * (t + 1)
        line_bytes = line.to_bytes(64, "little")
        safeguard.write(address, line_bytes)
        safeguard.inject_data_bits(address, line ^ bad_line)
        result = safeguard.read(address)
        if result.ok and result.data == line_bytes:
            safeguard_4pin += 1

    # Adversarial forgery: attacker-chosen replacement line.
    line = rng.getrandbits(512)
    _, checks = bamboo.encode(line)
    target = rng.getrandbits(512)
    _, target_checks = bamboo.encode(target)
    forged = bamboo.decode(target, target_checks)
    bamboo_forged = forged.ok and forged.data == target

    safeguard.write(0x40, line.to_bytes(64, "little"))
    safeguard.inject_data_bits(0x40, line ^ target)
    # The attacker cannot compute the matching 46-bit MAC without the key;
    # best effort is leaving (or guessing) the metadata.
    safeguard_forged = safeguard.read(0x40).ok

    return bamboo_4pin, safeguard_4pin, trials, bamboo_forged, safeguard_forged


def test_bamboo_vs_safeguard(benchmark):
    bamboo_4pin, safeguard_4pin, trials, bamboo_forged, safeguard_forged = once(
        benchmark, _compare
    )
    print(
        f"\n4-pin-failure correction: Bamboo {bamboo_4pin}/{trials}, "
        f"SafeGuard {safeguard_4pin}/{trials} (detects instead: DUE)"
    )
    print(
        f"adversarial line replacement accepted: Bamboo={bamboo_forged}, "
        f"SafeGuard={safeguard_forged}"
    )
    assert bamboo_4pin == trials  # Bamboo's correction superiority...
    assert safeguard_4pin < trials  # (SafeGuard DUEs multi-pin damage)
    assert bamboo_forged  # ...and its keyless forgeability
    assert not safeguard_forged
