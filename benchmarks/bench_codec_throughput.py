"""Micro-benchmarks of the codec primitives on the data path.

Not a paper figure: these measure the Python implementation's throughput
for the operations a controller performs per access (useful when sizing
larger fault-injection campaigns).
"""

import random


from repro.core.registry import create
from repro.ecc.chipkill import ChipkillCode
from repro.ecc.secded import LineECC1, WordSECDEDLine
from repro.mac.linemac import LineMAC

RNG = random.Random(99)
LINE_INT = RNG.getrandbits(512)
LINE_BYTES = LINE_INT.to_bytes(64, "little")


def test_mac_compute_throughput(benchmark):
    mac = LineMAC(b"bench-key-123456", 46)
    result = benchmark(mac.compute, LINE_BYTES, 0x4000)
    assert 0 <= result < (1 << 46)


def test_mac_compute_batch_throughput(benchmark):
    mac = LineMAC(b"bench-key-123456", 46)
    lines = [RNG.getrandbits(512).to_bytes(64, "little") for _ in range(64)]
    addresses = [64 * i for i in range(64)]
    results = benchmark(mac.compute_batch, lines, addresses)
    assert len(results) == 64
    assert all(0 <= r < (1 << 46) for r in results)


def test_line_ecc1_encode_throughput(benchmark):
    code = LineECC1(566)
    payload = RNG.getrandbits(566)
    checks = benchmark(code.encode, payload)
    assert 0 <= checks < (1 << 10)


def test_line_ecc1_correct_clean_throughput(benchmark):
    code = LineECC1(566)
    payload = RNG.getrandbits(566)
    checks = code.encode(payload)
    result = benchmark(code.correct, payload, checks)
    assert result.data == payload


def test_word_secded_encode_throughput(benchmark):
    code = WordSECDEDLine()
    _, ecc = benchmark(code.encode, LINE_INT)
    assert 0 <= ecc < (1 << 64)


def test_word_secded_decode_clean_throughput(benchmark):
    code = WordSECDEDLine()
    _, ecc = code.encode(LINE_INT)
    result = benchmark(code.decode, LINE_INT, ecc)
    assert result.data == LINE_INT


def test_word_secded_encode_batch_throughput(benchmark):
    code = WordSECDEDLine()
    lines = [RNG.getrandbits(512) for _ in range(64)]
    results = benchmark(code.encode_batch, lines)
    assert len(results) == 64


def test_chipkill_encode_throughput(benchmark):
    code = ChipkillCode()
    _, checks = benchmark(code.encode, LINE_INT)
    assert 0 <= checks < (1 << 64)


def test_chipkill_decode_clean_throughput(benchmark):
    code = ChipkillCode()
    _, checks = code.encode(LINE_INT)
    result = benchmark(code.decode, LINE_INT, checks)
    assert result.data == LINE_INT


def test_chipkill_encode_batch_throughput(benchmark):
    code = ChipkillCode()
    lines = [RNG.getrandbits(512) for _ in range(64)]
    results = benchmark(code.encode_batch, lines)
    assert len(results) == 64


def test_safeguard_write_read_throughput(benchmark):
    controller = create("safeguard-secded", key=b"bench-key-123456")

    def write_read():
        controller.write(0x40, LINE_BYTES)
        return controller.read(0x40)

    result = benchmark(write_read)
    assert result.ok


def test_safeguard_access_many_throughput(benchmark):
    controller = create("safeguard-secded", key=b"bench-key-123456")
    addresses = [64 * i for i in range(64)]
    for a in addresses:
        controller.write(a, LINE_BYTES)

    results = benchmark(controller.access_many, addresses)
    assert all(r.ok for r in results)
