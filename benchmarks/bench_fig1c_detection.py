"""Figure 1c: silent corruption (conventional ECC) vs. DUE (SafeGuard)."""

from conftest import once

from repro.experiments import fig1c_detection


def test_fig1c_consumption(benchmark):
    outcomes = once(benchmark, fig1c_detection.run, rh_threshold=1200, budget=340_000)
    fig1c_detection.report(outcomes)
    by = {o.organization: o for o in outcomes}
    assert not by["SafeGuard (SECDED)"].security_risk
    assert not by["SafeGuard (Chipkill)"].security_risk
    assert by["SafeGuard (SECDED)"].detected_ue > 0
