"""Shared benchmark configuration.

Each benchmark regenerates one of the paper's tables or figures and
prints the corresponding rows/series (captured with ``pytest -s`` or in
the benchmark output). Scales are chosen so the full suite completes in
minutes; EXPERIMENTS.md records the full-scale paper-vs-measured numbers.
"""

import os


#: Instruction budget per core for the performance benches (override with
#: REPRO_BENCH_INSTRUCTIONS for full-scale runs).
BENCH_INSTRUCTIONS = int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", 120_000))
BENCH_WARMUP = int(os.environ.get("REPRO_BENCH_WARMUP", 30_000))
#: Monte-Carlo module count for the reliability benches.
BENCH_MODULES = int(os.environ.get("REPRO_BENCH_MODULES", 60_000))
#: Worker processes for the sharded Monte-Carlo engine (fig6/fig10
#: reliability benches). Parallelism never changes the science output,
#: so full-scale runs can safely set this to the core count.
BENCH_WORKERS = int(os.environ.get("REPRO_MC_WORKERS", 1))


def once(benchmark, func, *args, **kwargs):
    """Run a heavy experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
