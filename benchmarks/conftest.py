"""Shared benchmark configuration.

Each benchmark regenerates one of the paper's tables or figures and
prints the corresponding rows/series (captured with ``pytest -s`` or in
the benchmark output). Scales are chosen so the full suite completes in
minutes; EXPERIMENTS.md records the full-scale paper-vs-measured numbers.
"""

import os

import pytest

#: Instruction budget per core for the performance benches (override with
#: REPRO_BENCH_INSTRUCTIONS for full-scale runs).
BENCH_INSTRUCTIONS = int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", 120_000))
BENCH_WARMUP = int(os.environ.get("REPRO_BENCH_WARMUP", 30_000))
#: Monte-Carlo module count for the reliability benches.
BENCH_MODULES = int(os.environ.get("REPRO_BENCH_MODULES", 60_000))


def once(benchmark, func, *args, **kwargs):
    """Run a heavy experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
