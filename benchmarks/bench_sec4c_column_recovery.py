"""Section IV-C: iterative column recovery latency progression."""

from conftest import once

from repro.experiments import sec4c_column_recovery


def test_sec4c_column_recovery(benchmark):
    points = once(benchmark, sec4c_column_recovery.run)
    sec4c_column_recovery.report(points)
    first, last = points[0], points[-1]
    assert first.mac_checks <= 66  # at most 64 candidates + 2 initial checks
    assert first.iterations <= 64
    assert last.mac_checks == 1  # eager steady state: one MAC check
    assert last.iterations == 1
