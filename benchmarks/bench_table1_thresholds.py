"""Table I / Figure 1a: RH-Threshold over time."""

from conftest import once

from repro.experiments import table1_thresholds


def test_table1_thresholds(benchmark):
    entries = once(benchmark, table1_thresholds.run)
    table1_thresholds.report(entries)
    assert entries[0].threshold == 139_000
    assert entries[-1].threshold == 4_800
