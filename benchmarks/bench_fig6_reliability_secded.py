"""Figure 6: SECDED vs. SafeGuard reliability over 7 years."""

from conftest import BENCH_MODULES, BENCH_WORKERS, once

from repro.experiments import fig6_reliability_secded


def test_fig6_reliability(benchmark):
    results = once(
        benchmark,
        fig6_reliability_secded.run,
        n_modules=BENCH_MODULES,
        workers=BENCH_WORKERS,
    )
    fig6_reliability_secded.report(results)
    secded, no_parity, with_parity = results
    # Paper: ~1.25x without column parity; virtually identical with it.
    assert no_parity.n_failed > secded.n_failed
    ratio = no_parity.n_failed / max(1, secded.n_failed)
    assert 1.05 < ratio < 1.6
    parity_ratio = with_parity.n_failed / max(1, secded.n_failed)
    assert parity_ratio < 1.15
    # Security: SafeGuard never fails silently.
    assert no_parity.n_sdc == 0 and with_parity.n_sdc == 0
