"""Ablation (Section IV-A): why a CRC cannot replace the MAC.

The paper considers CRC for the detection field and rejects it because
CRCs are linear and keyless: an adversary who can flip chosen bits can
always compute the matching check adjustment. This bench stages the same
forgery against a 46-bit CRC and against the 46-bit MAC.
"""

import random

from conftest import once

from repro.core.analysis import crc_forgery
from repro.ecc.crc import CRC46
from repro.mac.linemac import LineMAC


def _forgery_trial(trials=200, seed=21):
    rng = random.Random(seed)
    mac = LineMAC(b"ablation-crc-key", 46)
    crc_forged = mac_forged = 0
    for _ in range(trials):
        line = bytes(rng.getrandbits(8) for _ in range(64))
        mask = 0
        for _ in range(rng.randrange(1, 16)):
            mask |= 1 << rng.randrange(512)
        forged_line = (int.from_bytes(line, "little") ^ mask).to_bytes(64, "little")
        if forged_line == line:
            continue
        # CRC: the adversary computes the new check without any secret.
        new_crc, _ = crc_forgery(CRC46, line, mask)
        if CRC46.compute(forged_line) == new_crc:
            crc_forged += 1
        # MAC: the adversary's best keyless strategy is linear adjustment
        # of the stored value — it never verifies.
        stored = mac.compute(line, 0x40)
        guess = stored ^ (CRC46.compute_int(mask) & ((1 << 46) - 1))
        if mac.verify(forged_line, 0x40, guess):
            mac_forged += 1
    return crc_forged, mac_forged, trials


def test_crc_is_forgeable_mac_is_not(benchmark):
    crc_forged, mac_forged, trials = once(benchmark, _forgery_trial)
    print(
        f"\nAblation: chosen-flip forgery success over {trials} trials: "
        f"CRC-46 {crc_forged}/{trials}, MAC-46 {mac_forged}/{trials}"
    )
    assert crc_forged == trials  # every CRC forgery verifies
    assert mac_forged == 0  # the keyed MAC resists all of them
