"""Methodology: trace-seed variance of the performance results.

The transaction-level simulator shows chaotic sensitivity on
bandwidth-saturated workloads (bank/row alignment shifts with tiny timing
changes). This bench quantifies the noise floor so headline numbers
(EXPERIMENTS.md) are interpreted with the right error bars, and asserts
the SafeGuard-vs-SGX ordering is robust across seeds.
"""

from conftest import once

from repro.perf.model import PerfConfig, run_comparison_multiseed
from repro.perf.organizations import safeguard, sgx_style

WORKLOADS = ["omnetpp", "fotonik3d", "gcc"]
SEEDS = (0, 1, 2)


def test_seed_variance(benchmark):
    config = PerfConfig(instructions_per_core=80_000, warmup_instructions=20_000)
    orgs = [safeguard(8), sgx_style(8)]
    summaries = once(
        benchmark,
        run_comparison_multiseed,
        orgs,
        SEEDS,
        workloads=WORKLOADS,
        config=config,
    )
    print("\nSlowdown across trace seeds (gmean over 3 workloads):")
    for name, summary in summaries.items():
        values = ", ".join(f"{v:.2f}%" for v in summary.per_seed_slowdown_percent)
        print(f"  {name:22s} mean={summary.mean:6.2f}%  sd={summary.stdev:.2f}%  [{values}]")
    sg = summaries[orgs[0].name]
    sgx = summaries[orgs[1].name]
    # The noise floor stays well below the effects being measured...
    assert sg.stdev < 3.0
    # ...and the ordering holds for every seed individually.
    for a, b in zip(sg.per_seed_slowdown_percent, sgx.per_seed_slowdown_percent):
        assert a < b
