"""Extension: automated pattern discovery (Blacksmith-style fuzzing).

Mechanizes the paper's motivation — "new attack patterns continue to
break existing mitigations" — by letting a random-search fuzzer discover
breaking patterns against the mitigation zoo without being told about
TRRespass or Half-Double.
"""

from conftest import once

from repro.rowhammer.fuzzer import PatternFuzzer
from repro.rowhammer.mitigations import GrapheneMitigation, TRRMitigation


def _campaign():
    trr = PatternFuzzer(lambda: TRRMitigation(4), seed=5, budget=120_000).search(20)
    graphene = PatternFuzzer(
        lambda: GrapheneMitigation(600, 120_000), seed=5, budget=120_000
    ).search(30)
    return trr, graphene


def test_fuzzer_discovers_breakthroughs(benchmark):
    trr, graphene = once(benchmark, _campaign)
    print(
        f"\nFuzzer vs TRR: best={trr.best_flips} flips, first breakthrough "
        f"at trial {trr.trials_to_first_break}"
    )
    if trr.best_genome:
        print(f"  winning genome: {trr.best_genome}")
    print(
        f"Fuzzer vs Graphene: best={graphene.best_flips} flips, first at "
        f"trial {graphene.trials_to_first_break}"
    )
    assert trr.found_breakthrough  # tracker flushing rediscovered
    assert graphene.found_breakthrough  # mitigation-assisted distance-2
