"""Ablation (Sections V-C/V-D): iterative vs. eager correction.

Measures, on the real SafeGuard-Chipkill data path under a permanent chip
failure, how many MAC verifications touch *corrupted* data per read — the
quantity that determines the MAC-32 escape accumulation. Eager correction
reduces it to zero faulty-data checks in steady state (one check, on
repaired data), an 18x escape-time improvement per Section VII-E.
"""

from conftest import once

from repro.core.config import SafeGuardConfig
from repro.core.registry import create
from repro.core.types import ReadStatus


def _run_mode(eager: bool, reads: int = 64):
    controller = create(
        "safeguard-chipkill",
        SafeGuardConfig(key=b"ablation-eager-k", eager_correction=eager, spare_lines=0)
    )
    line = b"\x5A" * 64
    total_checks = 0
    for i in range(reads):
        address = 0x1000 + 64 * i
        controller.write(address, line)
        controller.inject_chip_failure(address, 6, 0xFFFF0000)
        result = controller.read(address)
        assert result.status is ReadStatus.CORRECTED_CHIP
        assert result.data == line
        total_checks += result.costs.mac_checks
    return total_checks / reads


def test_eager_correction_reduces_mac_checks(benchmark):
    def both():
        return _run_mode(eager=False), _run_mode(eager=True)

    iterative_checks, eager_checks = once(benchmark, both)
    print(
        "\nAblation: MAC checks/read under permanent chip failure: "
        f"iterative(history)={iterative_checks:.2f}, eager={eager_checks:.2f}"
    )
    # History-based iterative: pre-check on faulty data + post-repair check.
    assert iterative_checks >= 1.9
    # Eager steady state: a single check on repaired data (Figure 9b).
    assert eager_checks < 1.2
