"""Sections V-C / VII-E: MAC escape times + empirical 2^-n scaling."""

from conftest import once

from repro.core.analysis import chip_failure_escape_time
from repro.experiments import sec7e_mac_escape


def test_sec7e_mac_escape(benchmark):
    analytic = sec7e_mac_escape.analytic()
    empirical = once(benchmark, sec7e_mac_escape.empirical, widths=(8, 10, 12))
    sec7e_mac_escape.report(analytic, empirical)
    scenarios = dict((label, a) for label, a in analytic)
    assert scenarios["SECDED MAC-46, 1 check/fault"].expected_years_to_escape > 1000
    months_iterative = (
        scenarios["Chipkill MAC-32, iterative (18 checks/fault)"].expected_years_to_escape * 12
    )
    assert 3 < months_iterative < 12  # "within 6 months"
    eager_years = scenarios["Chipkill MAC-32, eager (1 check/fault)"].expected_years_to_escape
    assert 7 < eager_years < 11  # "about 9 years"
    assert chip_failure_escape_time() < 60
    for e in empirical:
        assert 0.2 * e.expected_rate < max(e.measured_rate, 1e-9) < 5 * e.expected_rate + 1e-9
