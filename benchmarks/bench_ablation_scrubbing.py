"""Ablation: memory scrubbing in the reliability model.

FaultSim supports scrubbing of correctable transient faults; the paper's
runs accumulate faults conservatively. This ablation quantifies how much
scrubbing changes the 7-year failure probability for SECDED and SafeGuard
(it mainly suppresses the already-rare two-independent-bit collisions, so
the Figure 6 conclusions are insensitive to it).
"""

from conftest import BENCH_MODULES, once

from repro.faultsim.evaluators import evaluator_for
from repro.faultsim.geometry import X8_SECDED_16GB
from repro.faultsim.montecarlo import MonteCarloConfig, simulate


def _run(scrub_hours):
    config = MonteCarloConfig(
        n_modules=BENCH_MODULES // 2,
        seed=13,
        fit_multiplier=10.0,  # boosted so collisions are visible
        scrub_interval_hours=scrub_hours,
    )
    geometry = X8_SECDED_16GB
    return (
        simulate(evaluator_for("secded", geometry), geometry, config),
        simulate(evaluator_for("safeguard-secded", geometry), geometry, config),
    )


def test_scrubbing_sensitivity(benchmark):
    def both():
        return _run(None), _run(24.0)

    (secded_raw, sg_raw), (secded_scrub, sg_scrub) = once(benchmark, both)
    print(
        f"\nAblation: 7y failures at 10x FIT, n={secded_raw.n_modules}: "
        f"SECDED {secded_raw.n_failed} -> {secded_scrub.n_failed} with daily scrub; "
        f"SafeGuard {sg_raw.n_failed} -> {sg_scrub.n_failed}"
    )
    assert secded_scrub.n_failed <= secded_raw.n_failed
    assert sg_scrub.n_failed <= sg_raw.n_failed
    # The SafeGuard-vs-SECDED relationship survives scrubbing.
    assert sg_scrub.n_sdc == 0
