"""Figure 13: performance sensitivity to MAC latency (8 -> 80 cycles)."""

from conftest import BENCH_INSTRUCTIONS, BENCH_WARMUP, once

from repro.experiments import perf_figures
from repro.perf.model import PerfConfig

WORKLOADS = ["mcf", "omnetpp", "lbm", "leela"]
LATENCIES = (8, 40, 80)


def test_fig13_mac_latency_sweep(benchmark):
    config = PerfConfig(
        instructions_per_core=BENCH_INSTRUCTIONS // 2,
        warmup_instructions=BENCH_WARMUP // 2,
    )
    sweep = once(
        benchmark,
        perf_figures.run_fig13,
        latencies=LATENCIES,
        workloads=WORKLOADS,
        config=config,
    )
    perf_figures.report_fig13(sweep)
    # SafeGuard's slowdown grows with MAC latency but stays far below the
    # SGX organization's at every point (paper: 5.8% vs 25%+ at 80 cycles).
    for latency, figure in sweep.items():
        slow = figure.gmean_slowdowns()
        names = figure.organizations
        assert slow[names[0]] < slow[names[1]]
    sg = [sweep[l].gmean_slowdowns()[sweep[l].organizations[0]] for l in LATENCIES]
    assert sg[-1] > sg[0]
