"""Figure 7: performance of SafeGuard vs. conventional SECDED."""

from conftest import BENCH_INSTRUCTIONS, BENCH_WARMUP, once

from repro.experiments import perf_figures
from repro.perf.model import PerfConfig


def test_fig7_safeguard_vs_secded(benchmark):
    config = PerfConfig(
        instructions_per_core=BENCH_INSTRUCTIONS, warmup_instructions=BENCH_WARMUP
    )
    figure = once(benchmark, perf_figures.run_fig7, config=config)
    perf_figures.report_per_workload(figure, "Figure 7: SafeGuard vs. SECDED")
    org = figure.organizations[0]
    gmean = figure.gmean_slowdowns()[org]
    # Paper: 0.7% average; allow simulator noise either side.
    assert -0.5 < gmean < 3.0
    worst = max(r.slowdown_percent(org) for r in figure.results)
    assert worst < 8.0  # paper's worst case (omnetpp) is 3.6%
