"""Ablation (Section II-D): isolation and global-refresh mitigations.

Completes the paper's four-class mitigation taxonomy with the two classes
Figure 1b's matrix doesn't cover: guard-row isolation (broken across a
single guard by the deployed mitigation's own refreshes — the blast-radius
assumption) and global refresh-rate increase (arithmetically infeasible
at modern thresholds).
"""

from conftest import once

from repro.rowhammer.global_refresh import analyze, feasibility_breakpoint
from repro.rowhammer.isolation import evaluate_isolation
from repro.rowhammer.mitigations import TRRMitigation


def _campaign():
    return {
        "guard1_alone": evaluate_isolation(1, None),
        "guard1_with_trr": evaluate_isolation(1, lambda: TRRMitigation(4)),
        "guard2_with_trr": evaluate_isolation(2, lambda: TRRMitigation(4)),
    }


def test_isolation_and_global_refresh(benchmark):
    outcomes = once(benchmark, _campaign)
    print("\nGuard-row isolation under boundary hammering:")
    for label, o in outcomes.items():
        print(
            f"  {label:18s} cross-domain flips={o.cross_domain_flips:3d} "
            f"guard flips={o.guard_row_flips:3d} overhead={o.capacity_overhead:.1%}"
        )
    assert outcomes["guard1_alone"].isolation_held
    assert not outcomes["guard1_with_trr"].isolation_held  # blast radius 2
    assert outcomes["guard2_with_trr"].isolation_held

    print("\nGlobal refresh feasibility (paper Section II-D):")
    for threshold in (139_000, 32_000, 10_000, 4_800):
        a = analyze(threshold)
        print(
            f"  threshold {threshold:>7,}: window {a.required_window_ms:5.2f}ms, "
            f"refresh overhead {a.refresh_overhead:7.1%} "
            f"{'OK' if a.feasible else 'INFEASIBLE'}"
        )
    assert analyze(139_000).feasible
    assert not analyze(10_000).feasible
    assert 30_000 < feasibility_breakpoint() < 100_000
