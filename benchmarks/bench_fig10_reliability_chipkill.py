"""Figure 10: Chipkill vs. SafeGuard-Chipkill reliability (1x and 10x FIT)."""

from conftest import BENCH_MODULES, BENCH_WORKERS, once

from repro.experiments import fig10_reliability_chipkill


def test_fig10_reliability(benchmark):
    results = once(
        benchmark,
        fig10_reliability_chipkill.run,
        n_modules=BENCH_MODULES // 2,
        workers=BENCH_WORKERS,
    )
    fig10_reliability_chipkill.report(results)
    for multiplier, (chipkill, safeguard) in results.items():
        # Virtually identical correction reliability.
        tolerance = max(5, int(chipkill.n_failed * 0.15))
        assert abs(safeguard.n_failed - chipkill.n_failed) <= tolerance
        assert safeguard.n_sdc == 0
    assert results[10.0][0].n_failed > results[1.0][0].n_failed
