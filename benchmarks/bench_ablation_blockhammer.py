"""Ablation (Section VIII): BlockHammer-style throttling.

The paper's related-work discussion credits BlockHammer with pattern-
independence (nothing for Half-Double to exploit) but criticizes its
latency (blacklisted accesses can exceed 125us at low thresholds) and its
design-point threshold dependence. This bench measures all three.
"""

from conftest import once

from repro.rowhammer.attacks import double_sided, half_double, many_sided
from repro.rowhammer.blockhammer import BlockHammerMitigation
from repro.rowhammer.model import DisturbanceModel, RowHammerConfig
from repro.rowhammer.runner import AttackRunner

THRESHOLD = 1200
BUDGET = 340_000


def _campaign():
    rows = []
    for attack_fn in (double_sided, many_sided, half_double):
        model = DisturbanceModel(RowHammerConfig(rh_threshold=THRESHOLD, seed=1))
        mitigation = BlockHammerMitigation(design_threshold=THRESHOLD, seed=2)
        result = AttackRunner(model, mitigation).run(attack_fn(64), budget=BUDGET)
        rows.append((attack_fn(64).name, result, mitigation))
    # Threshold drift: designed for the 2014 threshold, deployed today.
    model = DisturbanceModel(RowHammerConfig(rh_threshold=THRESHOLD, seed=1))
    stale = BlockHammerMitigation(design_threshold=139_000, seed=2)
    drift = AttackRunner(model, stale).run(double_sided(64), budget=BUDGET)
    return rows, drift


def test_blockhammer_ablation(benchmark):
    rows, drift = once(benchmark, _campaign)
    print("\nBlockHammer-style throttling (design threshold = device threshold):")
    for name, result, mitigation in rows:
        print(
            f"  {name:24s} victim flips={result.intended_flips:3d} "
            f"blocked={result.blocked_activations:6d} "
            f"(blocked fraction {mitigation.blocked_fraction:.0%})"
        )
        assert not result.broke_through
        assert result.mitigation_refreshes == 0  # nothing for Half-Double
    delay_us = BlockHammerMitigation(1000).throttle_delay_ns() / 1000
    print(f"  blacklisted-row pacing delay at threshold 1K: {delay_us:.0f}us "
          "(the paper's >125us criticism)")
    assert delay_us > 125
    print(f"  threshold drift (sized 139K, deployed {THRESHOLD}): "
          f"victim flips={drift.intended_flips}")
    assert drift.broke_through
